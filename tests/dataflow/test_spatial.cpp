#include "dataflow/spatial.hpp"

#include <gtest/gtest.h>

namespace gnna::dataflow {
namespace {

const SpatialArrayConfig kArray = SpatialArrayConfig::eyeriss();
const Frequency kClk = Frequency::giga_hertz(2.4);
const Bandwidth kBw = Bandwidth::gb_per_s(68.0);

TEST(SpatialArrayConfig, TableIValues) {
  EXPECT_EQ(kArray.num_pes(), 182U);
  EXPECT_EQ(kArray.pe_rows, 13U);
  EXPECT_EQ(kArray.pe_cols, 14U);
  EXPECT_EQ(kArray.register_file_bytes, 512U);
  EXPECT_EQ(kArray.global_buffer_bytes, 108U * 1024U);
  EXPECT_EQ(kArray.word_bytes, 4U);
}

TEST(MatmulShape, MacCounts) {
  const MatmulShape s{10, 20, 30, 0.5};
  EXPECT_EQ(s.total_macs(), 6000U);
  EXPECT_EQ(s.useful_macs(), 3000U);
}

TEST(Mapper, OutputStationaryCycleFormula) {
  const Mapper m(kArray);
  // 13x14 outputs in one pass, K streamed.
  const MappingStats st =
      m.map_with({13, 100, 14, 1.0}, Dataflow::kOutputStationary);
  EXPECT_EQ(st.compute_cycles, 100U);
  // Full PE occupancy: utilization 1.
  EXPECT_DOUBLE_EQ(st.pe_utilization_total(kArray), 1.0);
}

TEST(Mapper, ReductionSpreadCycleFormula) {
  const Mapper m(kArray);
  const MappingStats st =
      m.map_with({4, 364, 5, 1.0}, Dataflow::kReductionSpread);
  // ceil(364/182) = 2 cycles per output, 20 outputs.
  EXPECT_EQ(st.compute_cycles, 40U);
}

TEST(Mapper, WeightStationaryCycleFormula) {
  const Mapper m(kArray);
  const MappingStats st =
      m.map_with({50, 13, 14, 1.0}, Dataflow::kWeightStationary);
  // One weight tile pass, all 50 inputs stream through.
  EXPECT_EQ(st.compute_cycles, 50U);
}

TEST(Mapper, UtilizationNeverExceedsOne) {
  const Mapper m(kArray);
  for (const Dataflow df :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kReductionSpread}) {
    for (const MatmulShape s :
         {MatmulShape{1, 5, 4096, 1.0}, MatmulShape{1000, 1000, 16, 1.0},
          MatmulShape{1, 1, 1, 1.0}, MatmulShape{17, 31, 3, 1.0}}) {
      const MappingStats st = m.map_with(s, df);
      EXPECT_LE(st.pe_utilization_total(kArray), 1.0 + 1e-9)
          << to_string(df);
      EXPECT_GE(st.compute_cycles, 1U);
    }
  }
}

TEST(Mapper, UsefulNeverExceedsTotal) {
  const Mapper m(kArray);
  const MappingStats st = m.map({1000, 1000, 16, 0.001}, kBw, kClk);
  EXPECT_LE(st.useful_macs, st.total_macs);
  EXPECT_LE(st.dram_bytes_useful, st.dram_bytes_total);
  EXPECT_LE(st.pe_utilization_useful(kArray),
            st.pe_utilization_total(kArray));
}

TEST(Mapper, DenseWeightsFullyUseful) {
  const Mapper m(kArray);
  const MappingStats st = m.map({64, 64, 64, 1.0}, kBw, kClk);
  EXPECT_EQ(st.useful_macs, st.total_macs);
  EXPECT_EQ(st.dram_bytes_useful, st.dram_bytes_total);
}

TEST(Mapper, SearchPicksNoWorseThanEachCandidate) {
  const Mapper m(kArray);
  const MatmulShape s{2708, 2708, 16, 0.00074};
  const MappingStats best = m.map(s, kBw, kClk);
  for (const Dataflow df :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kReductionSpread}) {
    EXPECT_LE(best.latency_cycles(kClk, kBw),
              m.map_with(s, df).latency_cycles(kClk, kBw));
  }
}

TEST(MappingStats, LatencyUnlimitedEqualsCompute) {
  const Mapper m(kArray);
  const MappingStats st = m.map({100, 100, 100, 1.0}, std::nullopt, kClk);
  EXPECT_EQ(st.latency_cycles(kClk, std::nullopt), st.compute_cycles);
}

TEST(MappingStats, LatencyIsMaxOfComputeAndMemory) {
  MappingStats st;
  st.compute_cycles = 1000;
  st.dram_bytes_total = 1'000'000;  // ~35k cycles at 68 GB/s, 2.4 GHz
  const std::uint64_t lat = st.latency_cycles(kClk, kBw);
  const std::uint64_t mem_cycles =
      kClk.seconds_to_cycles(kBw.seconds_for(1e6));
  EXPECT_EQ(lat, mem_cycles);
  st.dram_bytes_total = 64;
  EXPECT_EQ(st.latency_cycles(kClk, kBw), 1000U);
}

TEST(MappingStats, BandwidthLimitNeverFasterThanUnlimited) {
  const Mapper m(kArray);
  for (const MatmulShape s :
       {MatmulShape{19717, 19717, 16, 0.000114},
        MatmulShape{2708, 1433, 16, 1.0}, MatmulShape{1, 128, 4096, 1.0}}) {
    const MappingStats st = m.map(s, kBw, kClk);
    EXPECT_GE(st.latency_cycles(kClk, kBw),
              st.latency_cycles(kClk, std::nullopt));
  }
}

TEST(MappingStats, Accumulation) {
  MappingStats a;
  a.total_macs = 10;
  a.compute_cycles = 5;
  a.dram_bytes_total = 100;
  MappingStats b = a;
  a += b;
  EXPECT_EQ(a.total_macs, 20U);
  EXPECT_EQ(a.compute_cycles, 10U);
  EXPECT_EQ(a.dram_bytes_total, 200U);
}

TEST(Mapper, ComputeCyclesMonotonicInWork) {
  const Mapper m(kArray);
  const MappingStats small = m.map({10, 10, 10, 1.0}, std::nullopt, kClk);
  const MappingStats big = m.map({100, 100, 100, 1.0}, std::nullopt, kClk);
  EXPECT_LT(small.compute_cycles, big.compute_cycles);
}

TEST(Mapper, TrafficIncludesAllOperandsOnce) {
  const Mapper m(kArray);
  // Tiny problem: everything fits, each operand moves exactly once.
  const MatmulShape s{8, 8, 8, 1.0};
  const MappingStats st = m.map(s, kBw, kClk);
  const std::uint64_t min_traffic = (8 * 8 + 8 * 8 + 8 * 8) * 4;
  EXPECT_EQ(st.dram_bytes_total, min_traffic);
}

TEST(Mapper, DegenerateShapesAreSafe) {
  const Mapper m(kArray);
  for (const Dataflow df :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kReductionSpread}) {
    const MappingStats st = m.map_with({0, 0, 0, 1.0}, df);
    EXPECT_GE(st.compute_cycles, 1U);  // clamped to 1x1x1
  }
}

TEST(Dataflow, ToString) {
  EXPECT_EQ(to_string(Dataflow::kOutputStationary), "output-stationary");
  EXPECT_EQ(to_string(Dataflow::kWeightStationary), "weight-stationary");
  EXPECT_EQ(to_string(Dataflow::kReductionSpread), "reduction-spread");
}

}  // namespace
}  // namespace gnna::dataflow
