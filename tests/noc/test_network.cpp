#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gnna::noc {
namespace {

Message make_msg(EndpointId src, EndpointId dst, std::uint32_t bytes = 4,
                 std::uint64_t tag = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.payload_bytes = bytes;
  m.a = tag;
  return m;
}

/// Drain the network until idle (bounded), collecting deliveries per
/// endpoint.
std::map<EndpointId, std::vector<Message>> run_to_idle(MeshNetwork& net,
                                                       Cycle max_cycles) {
  std::map<EndpointId, std::vector<Message>> out;
  for (Cycle c = 0; c < max_cycles; ++c) {
    net.tick();
    for (EndpointId e = 0; e < net.num_endpoints(); ++e) {
      while (auto m = net.poll(e)) out[e].push_back(*m);
    }
    if (net.idle()) break;
  }
  EXPECT_TRUE(net.idle()) << "network did not drain";
  return out;
}

TEST(Mesh, RejectsEmptyMesh) {
  EXPECT_THROW(MeshNetwork(0, 1), std::invalid_argument);
}

TEST(Mesh, EndpointOffMeshThrows) {
  MeshNetwork net(2, 2);
  EXPECT_THROW(net.add_endpoint(2, 0), std::out_of_range);
}

TEST(Mesh, AddEndpointAfterFinalizeThrows) {
  MeshNetwork net(1, 1);
  net.add_endpoint(0, 0);
  net.finalize();
  EXPECT_THROW(net.add_endpoint(0, 0), std::logic_error);
}

TEST(Mesh, SendToUnknownEndpointThrows) {
  MeshNetwork net(1, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  EXPECT_THROW(net.send(make_msg(a, 57)), std::out_of_range);
}

TEST(Mesh, SingleFlitSameRouterLatency) {
  MeshNetwork net(1, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(0, 0);
  net.send(make_msg(a, b));
  const auto out = run_to_idle(net, 100);
  ASSERT_EQ(out.at(b).size(), 1U);
  // Injection link + routing + ejection link = 3 cycles at zero load.
  EXPECT_EQ(out.at(b)[0].delivered_at - out.at(b)[0].injected_at, 3U);
}

TEST(Mesh, ZeroLoadLatencyGrowsTwoCyclesPerHop) {
  MeshNetwork net(5, 1);
  std::vector<EndpointId> eps;
  for (std::uint32_t x = 0; x < 5; ++x) eps.push_back(net.add_endpoint(x, 0));
  for (std::uint32_t hops = 1; hops < 5; ++hops) {
    net.send(make_msg(eps[0], eps[hops]));
    const auto out = run_to_idle(net, 200);
    const Message& m = out.at(eps[hops])[0];
    EXPECT_EQ(m.delivered_at - m.injected_at, 3U + 2U * hops) << hops;
  }
}

TEST(Mesh, MultiFlitSerializationAddsCycles) {
  MeshNetwork net(2, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(1, 0);
  net.send(make_msg(a, b, 64 * 7));  // 7 flits
  const auto out = run_to_idle(net, 200);
  const Message& m = out.at(b)[0];
  EXPECT_EQ(m.delivered_at - m.injected_at, 3U + 2U + 6U);
}

TEST(Mesh, ZeroByteMessageStillOneFlit) {
  MeshNetwork net(1, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(0, 0);
  Message m = make_msg(a, b, 0);
  EXPECT_EQ(m.flit_count(), 1U);
  net.send(m);
  const auto out = run_to_idle(net, 100);
  EXPECT_EQ(out.at(b).size(), 1U);
}

TEST(Mesh, SelfMessageDelivered) {
  MeshNetwork net(1, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  net.send(make_msg(a, a));
  const auto out = run_to_idle(net, 100);
  EXPECT_EQ(out.at(a).size(), 1U);
}

TEST(Mesh, PerPairOrderingPreserved) {
  MeshNetwork net(3, 3);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(2, 2);
  for (std::uint64_t i = 0; i < 50; ++i) {
    net.send(make_msg(a, b, 4 + (i % 5) * 64, /*tag=*/i));
  }
  const auto out = run_to_idle(net, 5000);
  ASSERT_EQ(out.at(b).size(), 50U);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(out.at(b)[i].a, i);
}

TEST(Mesh, PayloadFieldsSurviveTransit) {
  MeshNetwork net(2, 2);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(1, 1);
  Message m = make_msg(a, b, 128);
  m.kind = MsgKind::kMemReadReq;
  m.a = 0xDEAD;
  m.b = 0xBEEF;
  m.c = 42;
  m.reply_to = a;
  net.send(m);
  const auto out = run_to_idle(net, 200);
  const Message& r = out.at(b)[0];
  EXPECT_EQ(r.kind, MsgKind::kMemReadReq);
  EXPECT_EQ(r.a, 0xDEADU);
  EXPECT_EQ(r.b, 0xBEEFU);
  EXPECT_EQ(r.c, 42U);
  EXPECT_EQ(r.reply_to, a);
  EXPECT_EQ(r.src, a);
}

/// Property: every packet injected is delivered exactly once, for random
/// traffic on several mesh sizes.
class MeshAllToAll : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshAllToAll, ExactlyOnceDelivery) {
  const std::uint32_t dim = GetParam();
  MeshNetwork net(dim, dim);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < dim; ++y) {
    for (std::uint32_t x = 0; x < dim; ++x) {
      eps.push_back(net.add_endpoint(x, y));
      eps.push_back(net.add_endpoint(x, y));  // two endpoints per router
    }
  }
  Rng rng(dim * 101);
  const int kMessages = 400;
  std::map<std::uint64_t, int> expected;  // tag -> count
  for (int i = 0; i < kMessages; ++i) {
    const EndpointId s =
        eps[rng.next_below(eps.size())];
    const EndpointId d =
        eps[rng.next_below(eps.size())];
    net.send(make_msg(s, d, 4 + 64 * static_cast<std::uint32_t>(
                                          rng.next_below(4)),
                      /*tag=*/i));
    ++expected[i];
  }
  const auto out = run_to_idle(net, 100000);
  std::map<std::uint64_t, int> got;
  for (const auto& [ep, msgs] : out) {
    for (const auto& m : msgs) ++got[m.a];
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(net.stats().packets_delivered.value(),
            static_cast<std::uint64_t>(kMessages));
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, MeshAllToAll, ::testing::Values(1, 2, 3, 4));

TEST(Mesh, HotspotBackpressureDrains) {
  // Everyone hammers one endpoint with multi-flit messages; credits must
  // backpressure without loss or deadlock.
  MeshNetwork net(4, 4);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) eps.push_back(net.add_endpoint(x, y));
  }
  const EndpointId sink = eps[5];
  int sent = 0;
  for (const EndpointId s : eps) {
    if (s == sink) continue;
    for (int i = 0; i < 20; ++i) {
      net.send(make_msg(s, sink, 256));
      ++sent;
    }
  }
  const auto out = run_to_idle(net, 200000);
  EXPECT_EQ(out.at(sink).size(), static_cast<std::size_t>(sent));
}

TEST(Mesh, InputBuffersNeverExceedCapacity) {
  NocParams params;
  params.input_buffer_flits = 4;
  MeshNetwork net(3, 1, params);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(2, 0);
  for (int i = 0; i < 30; ++i) net.send(make_msg(a, b, 512));
  for (Cycle c = 0; c < 20000 && !net.idle(); ++c) {
    net.tick();
    for (std::uint32_t x = 0; x < 3; ++x) {
      const Router& r = net.router_at(x, 0);
      for (std::uint32_t p = 0; p < r.num_ports(); ++p) {
        ASSERT_LE(r.buffer_occupancy(p), 4U) << "router " << x << " port " << p;
      }
    }
    while (net.poll(b)) {
    }
  }
  EXPECT_TRUE(net.idle());
}

TEST(Mesh, DumpStateNamesPortsAndWormholeLocks) {
  // The deadlock dump must name the blocked resource: per-port input
  // buffer occupancy (one VC per port) as "N=2/4", and output state with
  // the wormhole-locked input and remaining credits.
  NocParams params;
  params.input_buffer_flits = 4;
  MeshNetwork net(3, 1, params);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(2, 0);
  net.finalize();
  for (int i = 0; i < 30; ++i) net.send(make_msg(a, b, 512));
  // Mid-burst: 8-flit packets are crossing the routers, so input buffers
  // hold flits and at least one output is wormhole-locked.
  for (int c = 0; c < 6; ++c) net.tick();

  std::ostringstream os;
  net.dump_state(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("noc:"), std::string::npos);
  EXPECT_NE(dump.find("in=[N="), std::string::npos);
  EXPECT_NE(dump.find(" L0="), std::string::npos);
  EXPECT_NE(dump.find("/4"), std::string::npos);
  EXPECT_NE(dump.find("locked="), std::string::npos);

  while (!net.idle()) {
    net.tick();
    while (net.poll(b)) {
    }
  }
}

TEST(Mesh, IdleSemantics) {
  MeshNetwork net(2, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(1, 0);
  net.finalize();
  EXPECT_TRUE(net.idle());
  net.send(make_msg(a, b));
  EXPECT_FALSE(net.idle());
  run_to_idle(net, 100);
  EXPECT_TRUE(net.idle());
}

TEST(Mesh, UnpolledDeliveryKeepsNetworkBusy) {
  MeshNetwork net(1, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(0, 0);
  net.send(make_msg(a, b));
  for (int i = 0; i < 20; ++i) net.tick();
  EXPECT_FALSE(net.idle());  // message sits undelivered in b's inbox
  EXPECT_EQ(net.delivery_queue_depth(b), 1U);
  EXPECT_NE(net.peek(b), nullptr);
  (void)net.poll(b);
  EXPECT_TRUE(net.idle());
}

TEST(Mesh, HopsBetween) {
  MeshNetwork net(4, 3);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(3, 2);
  const EndpointId c = net.add_endpoint(0, 0);
  EXPECT_EQ(net.hops_between(a, b), 5U);
  EXPECT_EQ(net.hops_between(a, c), 0U);
  EXPECT_EQ(net.hops_between(b, a), 5U);
}

TEST(Mesh, StatsCountFlitsAndLatency) {
  MeshNetwork net(2, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(1, 0);
  net.send(make_msg(a, b, 64 * 3));
  run_to_idle(net, 200);
  EXPECT_EQ(net.stats().packets_sent.value(), 1U);
  EXPECT_EQ(net.stats().packets_delivered.value(), 1U);
  EXPECT_EQ(net.stats().flits_delivered.value(), 3U);
  EXPECT_EQ(net.stats().flit_hops.value(), 3U);  // one mesh link, 3 flits
  EXPECT_GT(net.stats().packet_latency.mean(), 0.0);
}

TEST(Mesh, YxRoutingDeliversExactlyOnce) {
  NocParams params;
  params.routing = RoutingAlgorithm::kYX;
  MeshNetwork net(3, 3, params);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 3; ++x) eps.push_back(net.add_endpoint(x, y));
  }
  Rng rng(55);
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    net.send(make_msg(eps[rng.next_below(eps.size())],
                      eps[rng.next_below(eps.size())], 128, i));
  }
  run_to_idle(net, 50000);
  EXPECT_EQ(net.stats().packets_delivered.value(),
            static_cast<std::uint64_t>(kMessages));
}

TEST(Mesh, YxAndXySameZeroLoadLatency) {
  // Minimal routing: path length (and thus zero-load latency) is identical
  // for both dimension orders.
  for (const RoutingAlgorithm alg :
       {RoutingAlgorithm::kXY, RoutingAlgorithm::kYX}) {
    NocParams params;
    params.routing = alg;
    MeshNetwork net(4, 4, params);
    const EndpointId a = net.add_endpoint(0, 0);
    const EndpointId b = net.add_endpoint(3, 2);
    net.send(make_msg(a, b));
    const auto out = run_to_idle(net, 500);
    EXPECT_EQ(out.at(b)[0].delivered_at - out.at(b)[0].injected_at,
              3U + 2U * 5U);
  }
}

TEST(Mesh, ThroughputOneFlitPerCyclePerLink) {
  // A long stream across one link must sustain ~1 flit/cycle.
  MeshNetwork net(2, 1);
  const EndpointId a = net.add_endpoint(0, 0);
  const EndpointId b = net.add_endpoint(1, 0);
  const int kFlits = 512;
  for (int i = 0; i < kFlits / 8; ++i) net.send(make_msg(a, b, 64 * 8));
  Cycle start = net.now();
  const auto out = run_to_idle(net, 10000);
  ASSERT_EQ(out.at(b).size(), static_cast<std::size_t>(kFlits / 8));
  const Cycle elapsed = net.now() - start;
  // Serialization bound kFlits cycles; allow modest pipeline overheads.
  EXPECT_LE(elapsed, static_cast<Cycle>(kFlits * 1.3 + 20));
}

TEST(Mesh, InputPortForwardsAtMostOneFlitPerCycle) {
  // Regression: the per-output winner scan never marked an input as
  // consumed, so when a wormhole lock released, one input buffer could
  // pop flits for two different outputs (here: East eject and a local
  // port) in the same cycle.
  MeshNetwork net(3, 1);
  const EndpointId src_left = net.add_endpoint(0, 0);
  const EndpointId src_mid = net.add_endpoint(1, 0);
  const EndpointId sink_mid = net.add_endpoint(1, 0);
  const EndpointId sink_right = net.add_endpoint(2, 0);
  net.finalize();

  // An 8-flit packet wormhole-locks router (1,0)'s East output...
  net.send(make_msg(src_mid, sink_right, 64 * 8, 10));
  // ...while two single-flit packets for *different* outputs of router
  // (1,0) pile up in its West input buffer behind the lock.
  net.send(make_msg(src_left, sink_right, 4, 11));  // wants East
  net.send(make_msg(src_left, sink_mid, 4, 12));    // wants a local port

  const Router& r1 = net.router_at(1, 0);
  std::size_t prev = 0;
  std::size_t delivered = 0;
  for (Cycle c = 0; c < 300 && delivered < 3; ++c) {
    net.tick();
    const std::size_t occ = r1.buffer_occupancy(kPortWest);
    if (occ < prev) {
      // Once both stalled flits are buffered, nothing else arrives from
      // the west, so any drop in occupancy is pure departures: at most
      // one flit may leave one input port per cycle.
      EXPECT_LE(prev - occ, 1U) << "two flits left the West input in "
                                   "cycle "
                                << c;
    }
    prev = occ;
    for (EndpointId e = 0; e < net.num_endpoints(); ++e) {
      while (net.poll(e)) ++delivered;
    }
  }
  EXPECT_EQ(delivered, 3U);
}

TEST(Mesh, StalledGrantDoesNotRotateRoundRobinPriority) {
  // Regression: the round-robin pointer advanced whenever a winner was
  // merely *selected*, even if the move then stalled on zero credits.
  // Under a congested output the pointer therefore spun during every
  // stall, and whichever input it happened to land on when credits
  // returned won again and again — starving the other input for long
  // stretches. The pointer must move only on a committed transfer, which
  // makes two equally backlogged inputs alternate strictly.
  //
  // Topology: sources A and B share router (0,0)'s two local ports and
  // both stream single-flit packets east to the sink. An interferer on
  // the sink's router contends the 1-flit/cycle ejection port, so the
  // East link backs up and its credits stall periodically — exactly the
  // condition that made the old arbiter spin.
  MeshNetwork net(3, 1);
  const EndpointId src_a = net.add_endpoint(0, 0);
  const EndpointId src_b = net.add_endpoint(0, 0);
  const EndpointId interferer = net.add_endpoint(2, 0);
  const EndpointId sink = net.add_endpoint(2, 0);
  net.finalize();

  const int kN = 20;
  for (int i = 0; i < kN; ++i) {
    net.send(make_msg(src_a, sink, 4, static_cast<std::uint64_t>(i)));
    net.send(make_msg(src_b, sink, 4, 100 + static_cast<std::uint64_t>(i)));
    net.send(make_msg(interferer, sink, 4, 1000 + static_cast<std::uint64_t>(i)));
  }

  const auto out = run_to_idle(net, 5000);
  const auto& got = out.at(sink);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(3 * kN));

  // Project the delivery order onto the A/B contenders and measure the
  // longest run of consecutive grants to one source. A committed-move
  // pointer alternates ABAB... (run length 1); the rotate-on-select bug
  // produced runs of 15 with this traffic.
  int run = 0;
  int max_run = 0;
  char last = '?';
  std::uint64_t next_a = 0;
  std::uint64_t next_b = 100;
  for (const Message& m : got) {
    if (m.a >= 1000) continue;
    const char s = m.a < 100 ? 'A' : 'B';
    run = (s == last) ? run + 1 : 1;
    last = s;
    max_run = std::max(max_run, run);
    // Each source's own stream stays FIFO.
    if (s == 'A') {
      EXPECT_EQ(m.a, next_a++);
    } else {
      EXPECT_EQ(m.a, next_b++);
    }
  }
  EXPECT_EQ(next_a, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(next_b, 100U + static_cast<std::uint64_t>(kN));
  EXPECT_LE(max_run, 2) << "round-robin starved one input under a "
                           "congested output (rotate-on-select bug)";
}

}  // namespace
}  // namespace gnna::noc
