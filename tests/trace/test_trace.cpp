#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

namespace gnna::trace {
namespace {

TEST(Tracer, DisabledByDefaultAndFree) {
  const Tracer t;
  EXPECT_FALSE(t.enabled());
  // All calls are no-ops; the null clock must never be dereferenced.
  t.complete("x", 0.0, 1.0);
  t.instant("x");
  t.instant_at("x", 5.0);
  t.counter("x", 1.0);
}

TEST(Tracer, StampsInstantsWithTheClock) {
  struct Capture final : TraceSink {
    double last_at = -1.0;
    void complete(Category, std::uint32_t, const char*, double, double,
                  std::uint64_t, std::uint64_t) override {}
    void instant(Category, std::uint32_t, const char*, double at,
                 std::uint64_t, std::uint64_t) override {
      last_at = at;
    }
    void counter(Category, std::uint32_t, const char*, double,
                 double) override {}
  };
  Capture sink;
  std::uint64_t clock = 41;
  const Tracer t(&sink, &clock, Category::kDnq, 3);
  EXPECT_TRUE(t.enabled());
  clock = 42;
  t.instant("ev");
  EXPECT_DOUBLE_EQ(sink.last_at, 42.0);
}

TEST(CategoryName, CoversAllCategories) {
  EXPECT_STREQ(category_name(Category::kGpe), "gpe");
  EXPECT_STREQ(category_name(Category::kDnq), "dnq");
  EXPECT_STREQ(category_name(Category::kDna), "dna");
  EXPECT_STREQ(category_name(Category::kAgg), "agg");
  EXPECT_STREQ(category_name(Category::kNoc), "noc");
  EXPECT_STREQ(category_name(Category::kMem), "mem");
}

TEST(ChromeTraceSink, EmitsWellFormedDocument) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.complete(Category::kGpe, 0, "task", 10.0, 5.0, 7, 8);
    sink.instant(Category::kDnq, 1, "alloc", 12.0, 3, 0);
    sink.counter(Category::kMem, 0, "queue_depth", 20.0, 17.0);
    EXPECT_EQ(sink.events_written(), 3U);
    sink.close();
    sink.close();  // idempotent
  }
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\"", 0), 0U);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // The three events, with their phases and payloads.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"task\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":5"), std::string::npos);
  // Naming metadata for each (category, unit) seen.
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"gpe.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"dnq.1\""), std::string::npos);
  // Document closes properly.
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
}

TEST(ChromeTraceSink, DestructorClosesTheDocument) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.instant(Category::kNoc, 0, "send", 1.0, 0, 0);
  }
  const std::string doc = os.str();
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
}

TEST(ChromeTraceSink, EmptyTraceIsStillValidJson) {
  std::ostringstream os;
  { ChromeTraceSink sink(os); }
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("]}"), std::string::npos);
}

}  // namespace
}  // namespace gnna::trace
