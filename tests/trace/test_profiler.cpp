// Profiler-sink invariants: phase attribution via markers, the cycle
// conservation the integration tests also pin end to end, flame self-time
// arithmetic, and the fan-out/marker plumbing (TeeSink, ChromeTraceSink
// phase spans) the simulator relies on.
#include "trace/profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "trace/trace.hpp"

namespace gnna::trace {
namespace {

const FlameNode* find_path(const std::vector<FlameNode>& flame,
                           const std::string& path) {
  const auto it = std::find_if(flame.begin(), flame.end(),
                               [&](const FlameNode& f) {
                                 return f.path == path;
                               });
  return it == flame.end() ? nullptr : &*it;
}

TEST(Profiler, AttributesEventsToTheOpenPhase) {
  Profiler p;
  p.phase_begin("gc1", 0.0);
  p.complete(Category::kDna, 0, "entry", 5.0, 10.0, 0, 0);
  p.instant(Category::kDnq, 2, "alloc", 7.0, 0, 0);
  p.phase_end("gc1", 100.0);
  p.phase_begin("gc2", 100.0);
  p.complete(Category::kDna, 0, "entry", 110.0, 20.0, 0, 0);
  p.phase_end("gc2", 150.0);

  const ProfileReport r = p.report();
  ASSERT_EQ(r.phases.size(), 2U);
  EXPECT_EQ(r.phases[0].name, "gc1");
  EXPECT_DOUBLE_EQ(r.phases[0].cycles(), 100.0);
  EXPECT_DOUBLE_EQ(r.phases[0].busy[static_cast<int>(Category::kDna)], 10.0);
  EXPECT_EQ(r.phases[0].instants[static_cast<int>(Category::kDnq)], 1U);
  EXPECT_EQ(r.phases[1].name, "gc2");
  EXPECT_DOUBLE_EQ(r.phases[1].cycles(), 50.0);
  EXPECT_DOUBLE_EQ(r.phases[1].busy[static_cast<int>(Category::kDna)], 20.0);
  // Conservation: contiguous phases span the whole run.
  EXPECT_DOUBLE_EQ(r.total_cycles(), 150.0);
  EXPECT_DOUBLE_EQ(r.busy_total(Category::kDna), 30.0);
}

TEST(Profiler, EventsOutsideAnyPhaseLandInTheOutsideBucket) {
  Profiler p;
  p.complete(Category::kMem, 1, "read", 0.0, 4.0, 0, 0);
  p.phase_begin("gc1", 10.0);
  p.phase_end("gc1", 20.0);

  const ProfileReport r = p.report();
  ASSERT_EQ(r.phases.size(), 2U);
  EXPECT_EQ(r.phases[0].name, "(outside)");
  EXPECT_DOUBLE_EQ(r.phases[0].busy[static_cast<int>(Category::kMem)], 4.0);
  // The synthetic bucket is zero-span so conservation still holds.
  EXPECT_DOUBLE_EQ(r.phases[0].cycles(), 0.0);
  EXPECT_DOUBLE_EQ(r.total_cycles(), 10.0);
}

TEST(Profiler, TracksPerUnitBreakdownAndTaskCounters) {
  Profiler p;
  p.phase_begin("ph", 0.0);
  p.complete(Category::kGpe, 0, "task", 0.0, 8.0, 0, 0);
  p.complete(Category::kGpe, 1, "task", 0.0, 6.0, 0, 0);
  p.instant(Category::kGpe, 1, "alloc_stall", 3.0, 0, 0);
  p.phase_end("ph", 10.0);

  const ProfileReport r = p.report();
  ASSERT_EQ(r.phases.size(), 1U);
  const PhaseProfile& ph = r.phases[0];
  EXPECT_EQ(ph.tasks, 2U);
  EXPECT_EQ(ph.alloc_stalls, 1U);
  ASSERT_EQ(ph.units.size(), 2U);
  EXPECT_EQ(ph.units[0].unit, 0U);
  EXPECT_DOUBLE_EQ(ph.units[0].busy, 8.0);
  EXPECT_EQ(ph.units[1].unit, 1U);
  EXPECT_DOUBLE_EQ(ph.units[1].busy, 6.0);
  EXPECT_EQ(ph.units[1].instants, 1U);
}

TEST(Profiler, FlameSelfTimeSubtractsDirectChildren) {
  Profiler p;
  p.phase_begin("ph", 0.0);
  p.complete(Category::kGpe, 0, "task", 0.0, 100.0, 0, 0);
  p.complete(Category::kGpe, 0, "task/traverse", 0.0, 30.0, 0, 0);
  p.complete(Category::kGpe, 0, "task/gather", 30.0, 50.0, 0, 0);
  // A grandchild must not be double-subtracted from "task".
  p.complete(Category::kGpe, 0, "task/gather/reduce", 35.0, 10.0, 0, 0);
  p.phase_end("ph", 100.0);

  const ProfileReport r = p.report();
  const auto& flame = r.phases.at(0).flame;
  const FlameNode* task = find_path(flame, "task");
  ASSERT_NE(task, nullptr);
  EXPECT_DOUBLE_EQ(task->total, 100.0);
  EXPECT_DOUBLE_EQ(task->self, 20.0);  // 100 - (30 + 50)
  const FlameNode* gather = find_path(flame, "task/gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_DOUBLE_EQ(gather->self, 40.0);  // 50 - 10
  const FlameNode* leaf = find_path(flame, "task/gather/reduce");
  ASSERT_NE(leaf, nullptr);
  EXPECT_DOUBLE_EQ(leaf->self, 10.0);
  // Only GPE events enter the flame.
  Profiler q;
  q.phase_begin("ph", 0.0);
  q.complete(Category::kMem, 0, "read", 0.0, 5.0, 0, 0);
  q.phase_end("ph", 10.0);
  EXPECT_TRUE(q.report().phases.at(0).flame.empty());
}

TEST(Profiler, MergedFlameReaggregatesAcrossPhases) {
  Profiler p;
  p.phase_begin("gc1", 0.0);
  p.complete(Category::kGpe, 0, "task", 0.0, 10.0, 0, 0);
  p.phase_end("gc1", 50.0);
  p.phase_begin("gc2", 50.0);
  p.complete(Category::kGpe, 0, "task", 60.0, 30.0, 0, 0);
  p.phase_end("gc2", 100.0);

  const auto merged = p.report().merged_flame();
  const FlameNode* task = find_path(merged, "task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 2U);
  EXPECT_DOUBLE_EQ(task->total, 40.0);
  EXPECT_DOUBLE_EQ(task->max, 30.0);
}

TEST(Profiler, CountersKeepLastAndMax) {
  Profiler p;
  p.phase_begin("ph", 0.0);
  p.counter(Category::kMem, 0, "queue_depth", 1.0, 3.0);
  p.counter(Category::kMem, 0, "queue_depth", 2.0, 9.0);
  p.counter(Category::kMem, 0, "queue_depth", 3.0, 4.0);
  p.phase_end("ph", 10.0);

  const ProfileReport r = p.report();
  const auto& counters = r.phases.at(0).counters;
  ASSERT_EQ(counters.size(), 1U);
  EXPECT_EQ(counters[0].name, "queue_depth");
  EXPECT_EQ(counters[0].samples, 3U);
  EXPECT_DOUBLE_EQ(counters[0].last, 4.0);
  EXPECT_DOUBLE_EQ(counters[0].max, 9.0);
}

TEST(Profiler, PrintProfileMentionsPhasesAndPaths) {
  Profiler p;
  p.phase_begin("gc1", 0.0);
  p.complete(Category::kGpe, 0, "task", 0.0, 10.0, 0, 0);
  p.phase_end("gc1", 100.0);
  std::ostringstream os;
  print_profile(os, p.report());
  EXPECT_NE(os.str().find("gc1"), std::string::npos);
  EXPECT_NE(os.str().find("task"), std::string::npos);
}

TEST(CategoryByName, RoundTripsAndRejectsUnknown) {
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    EXPECT_EQ(category_by_name(category_name(static_cast<Category>(c))), c);
  }
  EXPECT_EQ(category_by_name("bogus"), kNumCategories);
}

TEST(TeeSink, ForwardsEveryEventToEverySink) {
  Profiler a;
  Profiler b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.phase_begin("ph", 0.0);
  tee.complete(Category::kAgg, 0, "reduce", 1.0, 2.0, 0, 0);
  tee.instant(Category::kDnq, 0, "alloc", 1.5, 0, 0);
  tee.counter(Category::kMem, 0, "depth", 2.0, 1.0);
  tee.phase_end("ph", 10.0);
  for (const Profiler* p : {&a, &b}) {
    const ProfileReport r = p->report();
    ASSERT_EQ(r.phases.size(), 1U);
    EXPECT_DOUBLE_EQ(r.phases[0].cycles(), 10.0);
    EXPECT_DOUBLE_EQ(r.phases[0].busy[static_cast<int>(Category::kAgg)], 2.0);
    EXPECT_EQ(r.phases[0].instants[static_cast<int>(Category::kDnq)], 1U);
    ASSERT_EQ(r.phases[0].counters.size(), 1U);
  }
}

TEST(ChromeTraceSink, PhaseMarkersBecomeSimSpans) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.phase_begin("gc1", 10.0);
    sink.phase_end("gc1", 110.0);
    sink.close();
  }
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"name\":\"gc1\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":100"), std::string::npos);
  EXPECT_NE(doc.find("\"sim.0\""), std::string::npos);
}

TEST(ChromeTraceSink, UnmatchedPhaseEndIsDropped) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.phase_end("never_began", 5.0);
    sink.close();
  }
  EXPECT_EQ(os.str().find("never_began"), std::string::npos);
}

}  // namespace
}  // namespace gnna::trace
