// End-to-end profiler pinning on the golden GCN/Cora run:
//  - enabling --profile must not change a single cycle (the markers and
//    the Profiler sink are pure observation);
//  - the per-phase spans conserve cycles (they tile the run exactly);
//  - the profile's task count matches the simulator's own counter;
//  - the stats_json embedding is schema-versioned and round-trips through
//    the sim::json reader gnnatrace uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "mem/memory.hpp"
#include "sim/json.hpp"
#include "sim/session.hpp"
#include "sim/stats_json.hpp"
#include "trace/profiler.hpp"

namespace gnna::sim {
namespace {

// Pinned in tests/accel/test_golden.cpp; duplicated here so a profiling
// side effect on timing shows up as a loud diff against the same number.
constexpr Cycle kGcnCoraGoldenCycles = 2871294;

accel::RunStats run_gcn_cora(bool profile) {
  RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  req.trace.profile = profile;
  return Session::global().run(req);
}

TEST(ProfileIntegration, ProfilingIsZeroCostAndConservesCycles) {
  const accel::RunStats off = run_gcn_cora(false);
  const accel::RunStats on = run_gcn_cora(true);

  // Markers + profiler sink must not perturb the timing model.
  EXPECT_EQ(off.cycles, kGcnCoraGoldenCycles);
  EXPECT_EQ(on.cycles, kGcnCoraGoldenCycles);
  EXPECT_EQ(on.tasks_completed, off.tasks_completed);
  EXPECT_EQ(on.mem_bytes_served, off.mem_bytes_served);
  EXPECT_EQ(on.packets_delivered, off.packets_delivered);

  EXPECT_EQ(off.profile, nullptr);
  ASSERT_NE(on.profile, nullptr);
  const trace::ProfileReport& pr = *on.profile;

  // Conservation: the phase spans tile the run, nothing lands outside.
  ASSERT_EQ(pr.phases.size(), on.phases.size());
  EXPECT_DOUBLE_EQ(pr.total_cycles(), static_cast<double>(on.cycles));
  std::uint64_t tasks = 0;
  for (std::size_t i = 0; i < pr.phases.size(); ++i) {
    EXPECT_EQ(pr.phases[i].name, on.phases[i].name);
    EXPECT_DOUBLE_EQ(pr.phases[i].cycles(),
                     static_cast<double>(on.phases[i].cycles));
    tasks += pr.phases[i].tasks;
  }
  EXPECT_EQ(tasks, on.tasks_completed);
  EXPECT_GT(pr.busy_total(trace::Category::kMem), 0.0);
  EXPECT_GT(pr.busy_total(trace::Category::kGpe), 0.0);

  // The GPE flame: sub-spans tile each task exactly, so "task" keeps no
  // self time and the rollup conserves the task total.
  const auto flame = pr.merged_flame();
  double task_total = 0.0;
  double children_total = 0.0;
  for (const auto& n : flame) {
    if (n.path == "task") {
      task_total = n.total;
      EXPECT_EQ(n.count, on.tasks_completed);
    } else {
      children_total += n.total;
    }
  }
  EXPECT_GT(task_total, 0.0);
  EXPECT_NEAR(task_total, children_total, 1e-6 * task_total);
}

TEST(ProfileIntegration, StatsJsonEmbedsVersionedProfileThatRoundTrips) {
  const accel::RunStats rs = run_gcn_cora(true);
  std::ostringstream os;
  write_run_stats_json(os, rs);

  const json::Value doc = json::Value::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.num_or("schema_version", 0.0),
                   kStatsJsonSchemaVersion);
  const json::Value* prof = doc.find("profile");
  ASSERT_NE(prof, nullptr);
  EXPECT_DOUBLE_EQ(prof->num_or("version", 0.0),
                   trace::kProfileSchemaVersion);

  const json::Value* phases = prof->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->size(), rs.profile->phases.size());
  double span_sum = 0.0;
  for (const json::Value& p : phases->items()) {
    span_sum += p.num_or("cycles", 0.0);
    const json::Value* busy = p.find("busy");
    ASSERT_NE(busy, nullptr);
    EXPECT_GT(busy->num_or("mem", 0.0), 0.0);
    ASSERT_NE(p.find("flame"), nullptr);
    ASSERT_NE(p.find("units"), nullptr);
  }
  EXPECT_DOUBLE_EQ(span_sum, static_cast<double>(rs.cycles));

  // Runs without profiling stay profile-free but keep the version field.
  const accel::RunStats plain = run_gcn_cora(false);
  std::ostringstream os2;
  write_run_stats_json(os2, plain);
  const json::Value doc2 = json::Value::parse(os2.str());
  EXPECT_DOUBLE_EQ(doc2.num_or("schema_version", 0.0),
                   kStatsJsonSchemaVersion);
  EXPECT_EQ(doc2.find("profile"), nullptr);
}

TEST(ProfileIntegration, FrfcfsRunEmitsSchemaV3MemFields) {
  RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  req.config = accel::AcceleratorConfig::cpu_iso_bw();
  req.config.mem_params.scheduler = mem::MemScheduler::kFrFcfs;
  const accel::RunStats rs = Session::global().run(req);

  EXPECT_EQ(rs.mem_scheduler, "frfcfs");
  EXPECT_GT(rs.mem_row_hits, 0U);
  EXPECT_GT(rs.mem_row_misses, 0U);
  EXPECT_GT(rs.mem_row_hit_rate, 0.0);
  EXPECT_LT(rs.mem_row_hit_rate, 1.0);
  ASSERT_FALSE(rs.mem_banks.empty());
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& b : rs.mem_banks) {
    EXPECT_LT(b.bank, rs.mem_banks.size());
    EXPECT_GE(b.busy_frac, 0.0);
    EXPECT_LE(b.busy_frac, 1.0);
    hits += b.row_hits;
    misses += b.row_misses;
  }
  EXPECT_EQ(hits, rs.mem_row_hits);
  EXPECT_EQ(misses, rs.mem_row_misses);

  std::ostringstream os;
  write_run_stats_json(os, rs);
  const json::Value doc = json::Value::parse(os.str());
  EXPECT_GE(doc.num_or("schema_version", 0.0), 3.0);
  EXPECT_EQ(doc.find("mem_scheduler")->as_string(), "frfcfs");
  EXPECT_GT(doc.num_or("mem_row_hit_rate", 0.0), 0.0);
  EXPECT_GT(doc.num_or("mem_queue_occupancy", 0.0), 0.0);
  const json::Value* banks = doc.find("mem_banks");
  ASSERT_NE(banks, nullptr);
  ASSERT_EQ(banks->size(), rs.mem_banks.size());
  for (const json::Value& b : banks->items()) {
    EXPECT_GE(b.num_or("busy_frac", -1.0), 0.0);
  }

  // The default in-order scheduler reports its name and an empty bank
  // array (the field is always present so consumers need no existence
  // check).
  const accel::RunStats plain = run_gcn_cora(false);
  EXPECT_EQ(plain.mem_scheduler, "in_order");
  EXPECT_TRUE(plain.mem_banks.empty());
  std::ostringstream os2;
  write_run_stats_json(os2, plain);
  const json::Value doc2 = json::Value::parse(os2.str());
  const json::Value* banks2 = doc2.find("mem_banks");
  ASSERT_NE(banks2, nullptr);
  EXPECT_EQ(banks2->size(), 0U);
}

}  // namespace
}  // namespace gnna::sim
