// Minimal JSON reader: the grammar gnnasim emits must round-trip, and
// malformed input must fail loudly (gnnatrace turns ParseError into a
// usage error instead of diffing garbage).
#include "sim/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gnna::sim::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_TRUE(Value::parse("true").as_bool());
  EXPECT_FALSE(Value::parse(" false ").as_bool());
  EXPECT_DOUBLE_EQ(Value::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Value::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(Value::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Value::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = Value::parse(
      R"({"name": "gc1", "cycles": 100, "phases": [{"x": 1}, {"x": 2}],)"
      R"( "flag": true, "none": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.str_or("name", ""), "gc1");
  EXPECT_DOUBLE_EQ(v.num_or("cycles", 0.0), 100.0);
  const Value* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->size(), 2U);
  EXPECT_DOUBLE_EQ(phases->at(1).num_or("x", 0.0), 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.num_or("missing", -1.0), -1.0);
  EXPECT_TRUE(v.find("none")->is_null());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const Value v = Value::parse(R"({"b": 1, "a": 2})");
  ASSERT_EQ(v.members().size(), 2U);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), ParseError);
  EXPECT_THROW(Value::parse("{"), ParseError);
  EXPECT_THROW(Value::parse("[1, 2,]"), ParseError);
  EXPECT_THROW(Value::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Value::parse("truth"), ParseError);
  EXPECT_THROW(Value::parse("1 2"), ParseError);
  EXPECT_THROW(Value::parse("nan"), ParseError);
}

TEST(Json, ReportsErrorOffset) {
  try {
    Value::parse("[1, x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4U);
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
}

TEST(Json, TypeMismatchesThrow) {
  const Value v = Value::parse("[1]");
  EXPECT_THROW((void)v.as_number(), std::logic_error);
  EXPECT_THROW((void)v.at(1), std::out_of_range);
}

TEST(Json, ParseFileMissingFileThrows) {
  EXPECT_THROW((void)parse_file("/nonexistent/run.json"), std::runtime_error);
}

}  // namespace
}  // namespace gnna::sim::json
