// Manifest parsing for `gnnasim --batch`: valid files expand to the right
// requests, and every malformed line is rejected with the source name and
// line number in the message.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/manifest.hpp"

namespace gnna::sim {
namespace {

std::vector<RunRequest> parse(const std::string& text,
                              RunRequest defaults = {}) {
  std::istringstream in(text);
  return parse_batch_manifest(in, defaults, "runs.txt");
}

std::string parse_error(const std::string& text) {
  try {
    (void)parse(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Manifest, StrictNumberParsers) {
  EXPECT_EQ(parse_u64("42"), 42U);
  EXPECT_EQ(parse_u64("0"), 0U);
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("12abc").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
  EXPECT_FALSE(parse_u64("1.5").has_value());
  EXPECT_FALSE(parse_u64(" 7").has_value());

  EXPECT_DOUBLE_EQ(parse_f64("2.4").value(), 2.4);
  EXPECT_DOUBLE_EQ(parse_f64("1").value(), 1.0);
  EXPECT_FALSE(parse_f64("").has_value());
  EXPECT_FALSE(parse_f64("1.2x").has_value());
  EXPECT_FALSE(parse_f64("nan").has_value());
}

TEST(Manifest, NameLookups) {
  EXPECT_EQ(benchmark_by_name("GCN/Cora"), gnn::Benchmark::kGcnCora);
  EXPECT_EQ(benchmark_by_name("PGNN/DBLP_1"), gnn::Benchmark::kPgnnDblp);
  EXPECT_FALSE(benchmark_by_name("GCN/Mars").has_value());

  EXPECT_TRUE(config_by_name("cpu-iso-bw").has_value());
  EXPECT_TRUE(config_by_name("gpu-iso-bw").has_value());
  EXPECT_TRUE(config_by_name("gpu-iso-flops").has_value());
  EXPECT_FALSE(config_by_name("tpu").has_value());

  EXPECT_EQ(partition_by_name("round-robin"),
            graph::PartitionPolicy::kRoundRobin);
  EXPECT_EQ(partition_by_name("block"), graph::PartitionPolicy::kBlock);
  EXPECT_EQ(partition_by_name("degree-greedy"),
            graph::PartitionPolicy::kDegreeGreedy);
  EXPECT_EQ(partition_by_name("profile-guided"),
            graph::PartitionPolicy::kProfileGuided);
  EXPECT_FALSE(partition_by_name("hash").has_value());
}

TEST(Manifest, AttributionKeys) {
  const auto reqs = parse(
      "benchmark=GCN/Cora attribution=1 attribution_top_k=128\n"
      "benchmark=GCN/Cora partition=profile-guided "
      "attribution_from=p1.json\n"
      "benchmark=GCN/Cora attribution=0\n");
  ASSERT_EQ(reqs.size(), 3U);
  EXPECT_TRUE(reqs[0].trace.attribution);
  EXPECT_EQ(reqs[0].trace.attribution_top_k, 128U);
  EXPECT_TRUE(reqs[0].attribution_from.empty());
  EXPECT_FALSE(reqs[1].trace.attribution);
  EXPECT_EQ(reqs[1].partition, graph::PartitionPolicy::kProfileGuided);
  EXPECT_EQ(reqs[1].attribution_from, "p1.json");
  EXPECT_FALSE(reqs[2].trace.attribution);
}

TEST(Manifest, RejectsMalformedAttributionValues) {
  EXPECT_NE(parse_error("benchmark=GCN/Cora attribution=yes\n")
                .find("attribution must be 0 or 1"),
            std::string::npos);
  EXPECT_NE(parse_error("benchmark=GCN/Cora attribution_top_k=0\n")
                .find("attribution_top_k"),
            std::string::npos);
  EXPECT_NE(parse_error("benchmark=GCN/Cora attribution_from=\n")
                .find("attribution_from needs a file path"),
            std::string::npos);
}

TEST(Manifest, ParsesRunsWithCommentsAndBlankLines) {
  const auto reqs = parse(
      "# nightly sweep\n"
      "\n"
      "benchmark=GCN/Cora\n"
      "  benchmark=GAT/Cora config=gpu-iso-bw clock=1.2 threads=32 "
      "partition=block seed=7\n"
      "\n"
      "# trailing comment\n");
  ASSERT_EQ(reqs.size(), 2U);

  EXPECT_EQ(reqs[0].benchmark, gnn::Benchmark::kGcnCora);
  EXPECT_FALSE(reqs[0].clock_ghz.has_value());
  EXPECT_FALSE(reqs[0].threads.has_value());
  EXPECT_EQ(reqs[0].seed, 2020U);
  EXPECT_EQ(reqs[0].partition, graph::PartitionPolicy::kRoundRobin);

  EXPECT_EQ(reqs[1].benchmark, gnn::Benchmark::kGatCora);
  ASSERT_TRUE(reqs[1].clock_ghz.has_value());
  EXPECT_DOUBLE_EQ(*reqs[1].clock_ghz, 1.2);
  EXPECT_EQ(reqs[1].threads, 32U);
  EXPECT_EQ(reqs[1].seed, 7U);
  EXPECT_EQ(reqs[1].partition, graph::PartitionPolicy::kBlock);
}

TEST(Manifest, DefaultsFlowIntoUnsetKeys) {
  RunRequest defaults;
  defaults.clock_ghz = 1.0;
  defaults.threads = 8;
  defaults.seed = 13;
  const auto reqs = parse(
      "benchmark=GCN/Cora\n"
      "benchmark=GCN/Cora clock=2.4 seed=99\n",
      defaults);
  ASSERT_EQ(reqs.size(), 2U);
  EXPECT_DOUBLE_EQ(*reqs[0].clock_ghz, 1.0);
  EXPECT_EQ(reqs[0].threads, 8U);
  EXPECT_EQ(reqs[0].seed, 13U);
  // Per-line keys override the defaults without disturbing other keys.
  EXPECT_DOUBLE_EQ(*reqs[1].clock_ghz, 2.4);
  EXPECT_EQ(reqs[1].threads, 8U);
  EXPECT_EQ(reqs[1].seed, 99U);
}

TEST(Manifest, RepeatExpandsIntoIdenticalRuns) {
  const auto reqs = parse(
      "benchmark=GCN/Cora repeat=3\n"
      "benchmark=GAT/Cora\n");
  ASSERT_EQ(reqs.size(), 4U);
  EXPECT_EQ(reqs[0].benchmark, gnn::Benchmark::kGcnCora);
  EXPECT_EQ(reqs[1].benchmark, gnn::Benchmark::kGcnCora);
  EXPECT_EQ(reqs[2].benchmark, gnn::Benchmark::kGcnCora);
  EXPECT_EQ(reqs[3].benchmark, gnn::Benchmark::kGatCora);
}

TEST(Manifest, ErrorsCarrySourceAndLineNumber) {
  EXPECT_NE(parse_error("benchmark=GCN/Cora\nbenchmark=GCN/Mars\n")
                .find("runs.txt:2"),
            std::string::npos);
  EXPECT_NE(parse_error("flux=9\n").find("runs.txt:1"), std::string::npos);
}

TEST(Manifest, RejectsUnknownKey) {
  const std::string msg = parse_error("benchmark=GCN/Cora flux=9\n");
  EXPECT_NE(msg.find("flux"), std::string::npos);
}

TEST(Manifest, RejectsMissingBenchmark) {
  EXPECT_FALSE(parse_error("clock=1.2\n").empty());
}

TEST(Manifest, RejectsMalformedValues) {
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora seed=abc\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora clock=fast\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora clock=0\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora clock=9.9\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora threads=0\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora threads=-4\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora repeat=0\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora config=tpu\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora partition=hash\n").empty());
  EXPECT_FALSE(parse_error("benchmark=GCN/Cora benchmark\n").empty());
}

TEST(Manifest, EmptyManifestYieldsNoRuns) {
  EXPECT_TRUE(parse("").empty());
  EXPECT_TRUE(parse("# only comments\n\n").empty());
}

}  // namespace
}  // namespace gnna::sim
