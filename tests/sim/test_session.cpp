// Session-layer invariants: content-keyed caching is transparent (cached
// and fresh inputs produce bit-identical stats) and the caches actually
// hit on repeated resolution.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "accel/compiler.hpp"
#include "accel/ir.hpp"
#include "graph/dataset_cache.hpp"
#include "sim/batch_runner.hpp"
#include "sim/json.hpp"
#include "sim/manifest.hpp"
#include "sim/session.hpp"
#include "sim/stats_json.hpp"

namespace gnna::sim {
namespace {

// GCN/Cora is the cheapest Table VII benchmark to simulate (~0.25 s) —
// fast enough to run several times in a unit test. (PGNN/DBLP_1 has fewer
// vertices but its anchor-set model is ~100x more expensive.)
constexpr gnn::Benchmark kSmall = gnn::Benchmark::kGcnCora;

void expect_same_stats(const accel::RunStats& a, const accel::RunStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.mem_bytes_requested, b.mem_bytes_requested);
  EXPECT_EQ(a.mem_bytes_served, b.mem_bytes_served);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.noc_flit_hops, b.noc_flit_hops);
  EXPECT_EQ(a.dna_macs, b.dna_macs);
  EXPECT_EQ(a.gpe_actions, b.gpe_actions);
  EXPECT_EQ(a.dnq_words, b.dnq_words);
  EXPECT_EQ(a.alloc_stalls, b.alloc_stalls);
  EXPECT_DOUBLE_EQ(a.millis, b.millis);
  EXPECT_DOUBLE_EQ(a.dna_utilization, b.dna_utilization);
  EXPECT_DOUBLE_EQ(a.gpe_utilization, b.gpe_utilization);
  EXPECT_DOUBLE_EQ(a.agg_utilization, b.agg_utilization);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].name, b.phases[i].name);
    EXPECT_EQ(a.phases[i].cycles, b.phases[i].cycles);
    EXPECT_EQ(a.phases[i].mem_bytes_served, b.phases[i].mem_bytes_served);
    EXPECT_EQ(a.phases[i].tasks, b.phases[i].tasks);
  }
}

TEST(DatasetCache, SameKeySharesOneInstance) {
  graph::DatasetCache cache;
  const auto a = cache.get(graph::DatasetId::kDblp1, 2020);
  const auto b = cache.get(graph::DatasetId::kDblp1, 2020);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1U);
  EXPECT_EQ(cache.misses(), 1U);
}

TEST(DatasetCache, DifferentSeedOrIdIsADifferentEntry) {
  graph::DatasetCache cache;
  const auto a = cache.get(graph::DatasetId::kDblp1, 2020);
  const auto b = cache.get(graph::DatasetId::kDblp1, 7);
  const auto c = cache.get(graph::DatasetId::kCora, 2020);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 3U);
  EXPECT_EQ(cache.misses(), 3U);
}

TEST(DatasetCache, CachedMatchesFreshGeneration) {
  graph::DatasetCache cache;
  const auto cached = cache.get(graph::DatasetId::kDblp1, 11);
  (void)cache.get(graph::DatasetId::kDblp1, 11);  // force a hit path
  const graph::Dataset fresh = graph::make_dataset(graph::DatasetId::kDblp1, 11);
  ASSERT_EQ(cached->graphs.size(), fresh.graphs.size());
  EXPECT_EQ(cached->node_features, fresh.node_features);
  EXPECT_EQ(cached->edge_features, fresh.edge_features);
  EXPECT_EQ(cached->total_edges(), fresh.total_edges());
}

TEST(Session, CachedRerunIsBitIdenticalToFreshRun) {
  RunRequest req;
  req.benchmark = kSmall;

  // Fresh session (cold caches) vs a second run on a warm session.
  Session fresh;
  const accel::RunStats cold = fresh.run(req);

  Session warm;
  (void)warm.run(req);
  const accel::RunStats hot = warm.run(req);

  expect_same_stats(cold, hot);

  const auto cc = warm.cache_counters();
  EXPECT_EQ(cc.dataset_misses, 1U);
  EXPECT_EQ(cc.program_misses, 1U);
  EXPECT_EQ(cc.program_hits, 1U);
}

TEST(Session, MatchesHandRolledPipeline) {
  // The session must produce exactly what the hand-rolled
  // dataset -> model -> compile -> simulate pipeline produced before the
  // refactor (this is what keeps the goldens valid).
  const graph::Dataset ds =
      graph::make_dataset(gnn::benchmark_dataset(kSmall), 2020);
  const gnn::ModelSpec model = gnn::make_benchmark_model(kSmall);
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(model, ds);
  accel::AcceleratorSim sim(accel::AcceleratorConfig::cpu_iso_bw());
  const accel::RunStats manual = sim.run(prog, ds);

  Session session;
  RunRequest req;
  req.benchmark = kSmall;
  const accel::RunStats via_session = session.run(req);

  expect_same_stats(manual, via_session);
}

TEST(Session, ResolveSharesDatasetAndProgramAcrossRequests) {
  Session session;
  RunRequest a;
  a.benchmark = kSmall;
  RunRequest b = a;
  b.threads = 32;  // per-run knobs must not fork the cached inputs

  const Session::Resolved ra = session.resolve(a);
  const Session::Resolved rb = session.resolve(b);
  EXPECT_EQ(ra.dataset.get(), rb.dataset.get());
  EXPECT_EQ(ra.program.get(), rb.program.get());

  RunRequest other_seed = a;
  other_seed.seed = 99;
  const Session::Resolved rc = session.resolve(other_seed);
  EXPECT_NE(ra.dataset.get(), rc.dataset.get());
  EXPECT_NE(ra.program.get(), rc.program.get());
}

TEST(Session, ClockAndThreadOverridesApply) {
  Session session;
  RunRequest req;
  req.benchmark = kSmall;
  req.clock_ghz = 1.2;
  req.threads = 4;
  const accel::RunStats rs = session.run(req);
  EXPECT_DOUBLE_EQ(rs.core_clock_ghz, 1.2);

  RunRequest base;
  base.benchmark = kSmall;
  const accel::RunStats def = session.run(base);
  // A 4-thread 1.2 GHz run cannot tie the 16-thread 2.4 GHz default in
  // wall time (cycle counts aren't comparable across clocks).
  EXPECT_GT(rs.millis, def.millis);
}

TEST(Session, RunStatsCarryProgramHashAndCacheSource) {
  Session session;
  RunRequest req;
  req.benchmark = kSmall;

  const accel::RunStats cold = session.run(req);
  EXPECT_EQ(cold.program_cache, "miss");
  EXPECT_EQ(cold.program_hash,
            accel::ir::content_hash(*session.resolve(req).program));

  const accel::RunStats warm = session.run(req);
  EXPECT_EQ(warm.program_cache, "hit");
  EXPECT_EQ(warm.program_hash, cold.program_hash);

  // The provenance pair lands in the stats JSON (schema v4) so cache
  // behavior is observable from --json output alone.
  std::ostringstream os;
  write_run_stats_json(os, warm);
  const json::Value doc = json::Value::parse(os.str());
  EXPECT_EQ(doc.str_or("program_cache", ""), "hit");
  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(warm.program_hash));
  EXPECT_EQ(doc.str_or("program_hash", ""), hash_buf);
}

TEST(Session, FileLoadedProgramDedupesAgainstLaterCompile) {
  // Save GCN/Cora's program from one session, load it as a .gnna file in
  // another: the later benchmark compile must hash-match the file-loaded
  // program and share its instance (source "dedupe"), not insert a copy.
  const std::string path = ::testing::TempDir() + "dedupe.gnna";
  {
    Session donor;
    RunRequest req;
    req.benchmark = kSmall;
    accel::ir::save_file(*donor.resolve(req).program, path);
  }

  Session session;
  RunRequest from_file;
  from_file.benchmark = kSmall;  // names the dataset to run against
  from_file.program_file = path;
  const Session::Resolved file = session.resolve(from_file);
  EXPECT_EQ(file.source, "file");
  // File loads keep their own provenance and don't touch the counters.
  EXPECT_EQ(session.cache_counters().program_misses, 0U);

  RunRequest compiled;
  compiled.benchmark = kSmall;
  const Session::Resolved dedupe = session.resolve(compiled);
  EXPECT_EQ(dedupe.source, "dedupe");
  EXPECT_EQ(dedupe.hash, file.hash);
  EXPECT_EQ(dedupe.program.get(), file.program.get());

  const Session::Resolved memo = session.resolve(compiled);
  EXPECT_EQ(memo.source, "hit");

  const auto cc = session.cache_counters();
  EXPECT_EQ(cc.program_hits, 1U);
  EXPECT_EQ(cc.program_dedupes, 1U);
  EXPECT_EQ(cc.program_misses, 0U);
}

TEST(Session, BatchManifestRepeatingBenchmarkReportsCacheInStatsJson) {
  // The ISSUE's observability contract end to end: a --batch manifest that
  // repeats a benchmark and varies the seed, run serially through one
  // session, must show the hit/miss split in the per-run stats JSON.
  std::istringstream manifest(
      "benchmark=GCN/Cora repeat=2\n"
      "benchmark=GCN/Cora seed=99\n");
  const std::vector<RunRequest> reqs =
      parse_batch_manifest(manifest, RunRequest{}, "cache.txt");
  ASSERT_EQ(reqs.size(), 3U);

  Session session;
  BatchRunner runner(session, 1);  // jobs=1 keeps hit/miss order exact
  const std::vector<RunResult> results = runner.run(reqs);
  ASSERT_EQ(results.size(), 3U);
  for (const RunResult& r : results) ASSERT_TRUE(r.ok()) << r.error;

  std::ostringstream os;
  write_batch_json(os, results);
  const json::Value doc = json::Value::parse(os.str());
  ASSERT_EQ(doc.size(), 3U);
  const json::Value& first = doc.items()[0];
  const json::Value& second = doc.items()[1];
  const json::Value& third = doc.items()[2];
  EXPECT_EQ(first.str_or("program_cache", ""), "miss");
  EXPECT_EQ(second.str_or("program_cache", ""), "hit");
  // Seed 99 regenerates Cora with a different topology, so its program is
  // a genuinely new entry, not a dedupe of the seed-2020 program.
  EXPECT_EQ(third.str_or("program_cache", ""), "miss");
  EXPECT_EQ(first.str_or("program_hash", "a"),
            second.str_or("program_hash", "b"));
  EXPECT_NE(first.str_or("program_hash", ""),
            third.str_or("program_hash", ""));

  const auto cc = session.cache_counters();
  EXPECT_EQ(cc.program_hits, 1U);
  EXPECT_EQ(cc.program_misses, 2U);
  EXPECT_EQ(cc.program_dedupes, 0U);
}

TEST(Session, EmptyRequestIsRejected) {
  Session session;
  EXPECT_THROW((void)session.resolve(RunRequest{}), std::invalid_argument);
}

TEST(Session, ProgramWithoutDatasetIsRejected) {
  Session session;
  RunRequest req;
  req.benchmark = kSmall;
  Session::Resolved r = session.resolve(req);
  RunRequest bad;
  bad.program = r.program;  // no dataset attached
  EXPECT_THROW((void)session.resolve(bad), std::invalid_argument);
}

}  // namespace
}  // namespace gnna::sim
