// BatchRunner invariants: parallel execution is bit-identical to serial,
// results come back in request order, and one failing run does not poison
// the rest of the batch.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "sim/batch_runner.hpp"
#include "sim/session.hpp"

namespace gnna::sim {
namespace {

std::vector<RunRequest> mixed_batch() {
  // Small workloads with distinguishable stats: two identical runs (cache
  // sharing + duplicate detection), a different benchmark, and knob
  // variations of the first.
  std::vector<RunRequest> reqs;
  RunRequest a;
  a.benchmark = gnn::Benchmark::kGatCora;
  reqs.push_back(a);
  reqs.push_back(a);
  RunRequest b;
  b.benchmark = gnn::Benchmark::kGcnCora;
  reqs.push_back(b);
  RunRequest c = a;
  c.clock_ghz = 1.2;
  reqs.push_back(c);
  RunRequest d = a;
  d.threads = 4;
  reqs.push_back(d);
  RunRequest e = a;
  e.seed = 7;
  reqs.push_back(e);
  return reqs;
}

void expect_same(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.error;
  ASSERT_TRUE(b.ok()) << b.error;
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.tasks_completed, b.stats.tasks_completed);
  EXPECT_EQ(a.stats.mem_bytes_served, b.stats.mem_bytes_served);
  EXPECT_EQ(a.stats.noc_flit_hops, b.stats.noc_flit_hops);
  EXPECT_EQ(a.stats.dna_macs, b.stats.dna_macs);
  EXPECT_EQ(a.stats.gpe_actions, b.stats.gpe_actions);
  EXPECT_DOUBLE_EQ(a.stats.millis, b.stats.millis);
  ASSERT_EQ(a.stats.phases.size(), b.stats.phases.size());
  for (std::size_t i = 0; i < a.stats.phases.size(); ++i) {
    EXPECT_EQ(a.stats.phases[i].cycles, b.stats.phases[i].cycles);
  }
}

TEST(BatchRunner, ParallelMatchesSerialBitForBit) {
  const std::vector<RunRequest> reqs = mixed_batch();

  Session serial_session;
  BatchRunner serial(serial_session, 1);
  const std::vector<RunResult> expect = serial.run(reqs);

  Session parallel_session;
  BatchRunner parallel(parallel_session, 4);
  const std::vector<RunResult> got = parallel.run(reqs);

  ASSERT_EQ(expect.size(), reqs.size());
  ASSERT_EQ(got.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_same(expect[i], got[i]);
  }
  // Sanity: the batch actually contains distinct workloads, so a
  // results-shuffled-by-completion-order bug cannot pass silently.
  EXPECT_NE(expect[0].stats.cycles, expect[2].stats.cycles);
  EXPECT_NE(expect[0].stats.cycles, expect[3].stats.cycles);
}

TEST(BatchRunner, ResultsArriveInRequestOrder) {
  // Order the batch so the LAST request is the heaviest: with dynamic
  // dispatch it finishes last, so only slot-indexed writes (not
  // append-on-completion) keep the output aligned with the input.
  std::vector<RunRequest> reqs;
  RunRequest heavy;
  heavy.benchmark = gnn::Benchmark::kGcnCora;
  RunRequest light;
  light.benchmark = gnn::Benchmark::kGatCora;
  reqs.push_back(light);
  reqs.push_back(light);
  reqs.push_back(heavy);

  Session session;
  BatchRunner runner(session, 3);
  std::mutex mu;
  std::vector<std::size_t> completion;
  runner.set_progress([&](std::size_t i, const RunResult&) {
    const std::lock_guard<std::mutex> lock(mu);
    completion.push_back(i);
  });
  const std::vector<RunResult> results = runner.run(reqs);

  ASSERT_EQ(results.size(), 3U);
  EXPECT_EQ(completion.size(), 3U);
  for (const RunResult& r : results) ASSERT_TRUE(r.ok()) << r.error;
  // Identical light runs agree; the heavy run is a different workload.
  EXPECT_EQ(results[0].stats.cycles, results[1].stats.cycles);
  EXPECT_NE(results[0].stats.cycles, results[2].stats.cycles);
}

TEST(BatchRunner, FailedRunIsIsolated) {
  std::vector<RunRequest> reqs;
  RunRequest good;
  good.benchmark = gnn::Benchmark::kGatCora;
  RunRequest bad;  // no workload at all -> resolve() throws
  reqs.push_back(good);
  reqs.push_back(bad);
  reqs.push_back(good);

  Session session;
  BatchRunner runner(session, 2);
  const std::vector<RunResult> results = runner.run(reqs);

  ASSERT_EQ(results.size(), 3U);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_EQ(results[0].stats.cycles, results[2].stats.cycles);
}

TEST(BatchRunner, WatchdogTripSurfacesAsError) {
  RunRequest req;
  req.benchmark = gnn::Benchmark::kGatCora;
  req.watchdog_cycles = 1;  // guaranteed to trip immediately

  Session session;
  BatchRunner runner(session, 1);
  const std::vector<RunResult> results = runner.run({req});
  ASSERT_EQ(results.size(), 1U);
  EXPECT_FALSE(results[0].ok());
}

TEST(BatchRunner, EmptyBatchAndJobClamping) {
  Session session;
  BatchRunner runner(session, 64);  // far more workers than work
  EXPECT_TRUE(runner.run({}).empty());

  RunRequest req;
  req.benchmark = gnn::Benchmark::kGatCora;
  const std::vector<RunResult> one = runner.run({req});
  ASSERT_EQ(one.size(), 1U);
  EXPECT_TRUE(one[0].ok()) << one[0].error;

  BatchRunner all_cores(session, 0);  // 0 = one per hardware thread
  EXPECT_GE(all_cores.jobs(), 1U);
}

TEST(BatchRunner, SharedSessionCachesAcrossBatch) {
  std::vector<RunRequest> reqs(4);
  for (RunRequest& r : reqs) r.benchmark = gnn::Benchmark::kGatCora;

  Session session;
  BatchRunner runner(session, 4);
  const std::vector<RunResult> results = runner.run(reqs);
  for (const RunResult& r : results) ASSERT_TRUE(r.ok()) << r.error;

  const Session::CacheCounters cc = session.cache_counters();
  // The dataset cache generates inside its lock: exactly one miss.
  EXPECT_EQ(cc.dataset_misses, 1U);
  // Program compilation happens outside the cache lock, so concurrent
  // first requests may each count a miss (first insert wins); what must
  // hold is that every request was accounted and at least one missed.
  EXPECT_GE(cc.program_misses, 1U);
  EXPECT_EQ(cc.program_hits + cc.program_misses, 4U);
}

}  // namespace
}  // namespace gnna::sim
