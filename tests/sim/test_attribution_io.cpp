// load_attribution_profile: the bridge from a prior run's stats JSON to
// the dense load vector profile-guided partitioning consumes.
#include "sim/attribution_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace gnna::sim {
namespace {

/// Writes `text` to a temp file for the duration of the test.
class TempJson {
 public:
  explicit TempJson(const std::string& text)
      : path_(std::string(::testing::TempDir()) + "attr_io_" +
              std::to_string(counter_++) + ".json") {
    std::ofstream out(path_);
    out << text;
  }
  ~TempJson() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempJson::counter_ = 0;

constexpr const char* kRunWithAttribution = R"({
  "schema_version": 5,
  "cycles": 1000,
  "attribution": {
    "version": 1, "top_k": 4, "span": 1000, "total_busy": 60,
    "busy_max_mean": 1.25, "flit_gini": 0.1, "unattributed_flits": 2,
    "tiles": [
      {"tile": 0, "busy": 40}, {"tile": 1, "busy": 20}
    ],
    "vertices": [
      {"vertex": 7, "busy": 30.0, "approx": false},
      {"vertex": 2, "busy": 20.0, "approx": false},
      {"vertex": 9, "busy": 10.0, "approx": true}
    ]
  }
})";

TEST(AttributionIo, LoadsSingleRunObject) {
  const TempJson f(kRunWithAttribution);
  const AttributionProfile p = load_attribution_profile(f.path());
  EXPECT_EQ(p.num_tiles, 2U);
  EXPECT_DOUBLE_EQ(p.busy_max_mean, 1.25);
  EXPECT_DOUBLE_EQ(p.flit_gini, 0.1);
  // Dense vector sized to max id + 1; untabled vertices stay 0.
  ASSERT_EQ(p.vertex_busy.size(), 10U);
  EXPECT_DOUBLE_EQ(p.vertex_busy[7], 30.0);
  EXPECT_DOUBLE_EQ(p.vertex_busy[2], 20.0);
  EXPECT_DOUBLE_EQ(p.vertex_busy[9], 10.0);
  EXPECT_DOUBLE_EQ(p.vertex_busy[0], 0.0);
}

TEST(AttributionIo, FindsFirstAttributedRunInBatchArray) {
  const TempJson f(std::string("[{\"error\": \"boom\"}, {\"cycles\": 5}, ") +
                   kRunWithAttribution + "]");
  const AttributionProfile p = load_attribution_profile(f.path());
  EXPECT_EQ(p.num_tiles, 2U);
  EXPECT_DOUBLE_EQ(p.vertex_busy[7], 30.0);
}

TEST(AttributionIo, MissingBlockThrowsWithHint) {
  const TempJson f(R"({"schema_version": 5, "cycles": 1000})");
  try {
    (void)load_attribution_profile(f.path());
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--attribution"),
              std::string::npos);
  }
}

TEST(AttributionIo, UnreadableFileThrows) {
  EXPECT_THROW((void)load_attribution_profile("/nonexistent/attr.json"),
               std::runtime_error);
}

TEST(AttributionIo, IgnoresMalformedVertexRows) {
  const TempJson f(R"({
    "attribution": {
      "tiles": [],
      "vertices": [
        {"vertex": -1, "busy": 5.0},
        {"vertex": 3, "busy": 0.0},
        {"vertex": 1, "busy": 7.0},
        "not-an-object"
      ]
    }
  })");
  const AttributionProfile p = load_attribution_profile(f.path());
  EXPECT_EQ(p.num_tiles, 0U);
  ASSERT_EQ(p.vertex_busy.size(), 2U);
  EXPECT_DOUBLE_EQ(p.vertex_busy[1], 7.0);
}

}  // namespace
}  // namespace gnna::sim
