#include "gnn/functional.hpp"

#include "gnn/model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"

namespace gnna::gnn {
namespace {

using linalg::Matrix;

graph::Graph test_graph(NodeId n = 12, EdgeId e = 30, std::uint64_t seed = 1) {
  Rng rng(seed);
  return graph::generate_random_graph(rng, n, e);
}

Matrix random_features(std::size_t rows, std::size_t cols,
                       std::uint64_t seed = 2) {
  Rng rng(seed);
  return Matrix::random(rng, rows, cols, -1.0F, 1.0F);
}

TEST(Functional, ProjectLayerMatchesMatmul) {
  ModelSpec m;
  m.name = "proj";
  LayerSpec l;
  l.name = "p";
  l.kind = LayerKind::kProject;
  l.in_features = 6;
  l.out_features = 4;
  l.act = Activation::kRelu;
  m.layers = {l};

  const FunctionalExecutor exec(m);
  const auto g = test_graph();
  const Matrix x = random_features(g.num_nodes(), 6);
  const Matrix out = exec.run(g, x, {});

  const auto& w = exec.weights().layers[0];
  Matrix expect = linalg::add_row_bias(linalg::matmul(x, w.w), w.bias);
  linalg::relu_inplace(expect);
  EXPECT_LT(linalg::max_abs_diff(out, expect), 1e-5);
}

TEST(Functional, GcnLayerMatchesClosedForm) {
  // One kConv layer must equal relu(Ahat (X W + b)) with the Kipf
  // renormalized adjacency.
  ModelSpec m = make_gcn(6, 4, 4);
  m.layers.resize(1);
  const FunctionalExecutor exec(m);
  const auto g = test_graph(15, 40);
  const Matrix x = random_features(15, 6);
  const Matrix out = exec.run(g, x, {});

  const auto& w = exec.weights().layers[0];
  const auto ahat = linalg::CsrMatrix::gcn_normalized_adjacency(g);
  Matrix expect = linalg::spmm(
      ahat, linalg::add_row_bias(linalg::matmul(x, w.w), w.bias));
  linalg::relu_inplace(expect);
  EXPECT_LT(linalg::max_abs_diff(out, expect), 1e-4);
}

TEST(Functional, ConvSumAggregation) {
  ModelSpec m;
  LayerSpec l;
  l.kind = LayerKind::kConv;
  l.in_features = 3;
  l.out_features = 2;
  l.norm = AggNorm::kSum;
  l.include_self = true;
  l.act = Activation::kNone;
  l.name = "c";
  m.layers = {l};
  const FunctionalExecutor exec(m);
  const auto g = test_graph(10, 20);
  const Matrix x = random_features(10, 3);
  const Matrix out = exec.run(g, x, {});

  const auto& w = exec.weights().layers[0];
  const Matrix p = linalg::add_row_bias(linalg::matmul(x, w.w), w.bias);
  const auto a = linalg::CsrMatrix::adjacency(
      g.symmetrized().with_self_loops());
  EXPECT_LT(linalg::max_abs_diff(out, linalg::spmm(a, p)), 1e-4);
}

TEST(Functional, GcnDeepensAcrossLayers) {
  const ModelSpec m = make_gcn(6, 3, 5);
  const FunctionalExecutor exec(m);
  const auto g = test_graph();
  const Matrix out = exec.run(g, random_features(g.num_nodes(), 6), {});
  EXPECT_EQ(out.rows(), g.num_nodes());
  EXPECT_EQ(out.cols(), 3U);
}

TEST(Functional, GatMatchesNaiveReference) {
  ModelSpec m = make_gat(5, 3, 2, 4);
  m.layers.resize(1);  // single attention layer
  const FunctionalExecutor exec(m);
  const auto g = test_graph(10, 24, 7);
  const Matrix x = random_features(10, 5, 8);
  const Matrix out = exec.run(g, x, {});

  // Independent naive reference.
  const auto sym = g.symmetrized().with_self_loops();
  const auto& lw = exec.weights().layers[0];
  Matrix expect(10, 8);
  for (std::uint32_t head = 0; head < 2; ++head) {
    const Matrix p = linalg::matmul(x, lw.head_w[head]);
    const auto& a = lw.head_a[head];
    for (NodeId v = 0; v < 10; ++v) {
      for (const NodeId u : sym.neighbors(v)) {
        float coeff = 0.0F;
        for (std::uint32_t f = 0; f < 4; ++f) {
          coeff += a[f] * p(v, f) + a[4 + f] * p(u, f);
        }
        coeff = linalg::leaky_relu(coeff);
        for (std::uint32_t f = 0; f < 4; ++f) {
          expect(v, head * 4 + f) += coeff * p(u, f);
        }
      }
    }
  }
  linalg::leaky_relu_inplace(expect);
  EXPECT_LT(linalg::max_abs_diff(out, expect), 1e-4);
}

TEST(Functional, MpnnZeroEdgesIsPureGruDecay) {
  // With no edges, messages are zero and h' = GRU(h, 0) elementwise.
  ModelSpec m;
  LayerSpec l;
  l.kind = LayerKind::kMessagePass;
  l.name = "mp";
  l.in_features = 4;
  l.out_features = 4;
  l.edge_features = 2;
  l.edge_hidden = 8;
  m.layers = {l};
  const FunctionalExecutor exec(m);

  graph::GraphBuilder b(3);
  const graph::Graph g = std::move(b).build();
  const Matrix x = random_features(3, 4, 9);
  const Matrix out = exec.run(g, x, {});

  const auto& w = exec.weights().layers[0];
  const Matrix hz = linalg::matmul(x, w.gru_uz);
  const Matrix hr = linalg::matmul(x, w.gru_ur);
  Matrix rh(3, 4);
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      rh(v, f) = linalg::sigmoid(hr(v, f)) * x(v, f);
    }
  }
  const Matrix hh = linalg::matmul(rh, w.gru_uh);
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      const float z = linalg::sigmoid(hz(v, f));
      const float cand = std::tanh(hh(v, f));
      EXPECT_NEAR(out(v, f), (1.0F - z) * x(v, f) + z * cand, 1e-5);
    }
  }
}

TEST(Functional, MpnnMessagesAreSymmetricInEdgeDirection) {
  // Each stored bond sends messages both ways: an edge (u,v) must affect
  // both endpoints' states.
  ModelSpec m;
  LayerSpec l;
  l.kind = LayerKind::kMessagePass;
  l.name = "mp";
  l.in_features = 3;
  l.out_features = 3;
  l.edge_features = 2;
  l.edge_hidden = 4;
  m.layers = {l};
  const FunctionalExecutor exec(m);

  graph::GraphBuilder b(2);
  b.add_edge(0, 1);  // single stored bond
  const graph::Graph g = std::move(b).build();
  const Matrix x = random_features(2, 3, 10);
  Matrix ef(1, 2);
  ef(0, 0) = 0.5F;
  ef(0, 1) = -0.25F;

  // Reference: no-edge output differs from with-edge output at both ends.
  graph::GraphBuilder b2(2);
  const graph::Graph g_empty = std::move(b2).build();
  const Matrix with_edge = exec.run(g, x, ef);
  const Matrix without = exec.run(g_empty, x, {});
  for (std::size_t v = 0; v < 2; ++v) {
    float diff = 0.0F;
    for (std::uint32_t f = 0; f < 3; ++f) {
      diff += std::abs(with_edge(v, f) - without(v, f));
    }
    EXPECT_GT(diff, 1e-6) << "vertex " << v << " saw no message";
  }
}

TEST(Functional, MultiHopMatchesDensePowers) {
  ModelSpec m = make_pgnn(3, 2, 4, 3, 1);
  const FunctionalExecutor exec(m);
  const auto g = test_graph(9, 16, 11);
  const Matrix x = random_features(9, 3, 12);
  const Matrix out = exec.run(g, x, {});

  const auto& w = exec.weights().layers[0];
  const Matrix a = linalg::CsrMatrix::adjacency(g.symmetrized()).to_dense();
  const Matrix a2 = linalg::matmul(a, a);
  const Matrix a4 = linalg::matmul(a2, a2);
  Matrix expect = linalg::matmul(x, w.hop_w[0]);
  expect = linalg::add(expect,
                       linalg::matmul(linalg::matmul(a, x), w.hop_w[1]));
  expect = linalg::add(expect,
                       linalg::matmul(linalg::matmul(a2, x), w.hop_w[2]));
  expect = linalg::add(expect,
                       linalg::matmul(linalg::matmul(a4, x), w.hop_w[3]));
  // Single-layer PGNN is the output layer: no activation.
  EXPECT_LT(linalg::max_abs_diff(out, expect), 1e-3);
}

TEST(Functional, ReadoutPoolsWholeGraph) {
  ModelSpec m;
  LayerSpec l;
  l.kind = LayerKind::kReadout;
  l.name = "ro";
  l.in_features = 4;
  l.out_features = 3;
  m.layers = {l};
  const FunctionalExecutor exec(m);
  const auto g = test_graph(7, 10);
  const Matrix x = random_features(7, 4, 13);
  const Matrix out = exec.run(g, x, {});
  ASSERT_EQ(out.rows(), 1U);
  ASSERT_EQ(out.cols(), 3U);

  const auto& w = exec.weights().layers[0];
  Matrix pooled(1, 4);
  for (std::size_t v = 0; v < 7; ++v) {
    for (std::uint32_t f = 0; f < 4; ++f) pooled(0, f) += x(v, f);
  }
  const Matrix expect =
      linalg::add_row_bias(linalg::matmul(pooled, w.w), w.bias);
  EXPECT_LT(linalg::max_abs_diff(out, expect), 1e-4);
}

TEST(Functional, RunDatasetStacksPerGraphOutputs) {
  Rng rng(14);
  graph::Dataset ds;
  ds.spec = {"multi", 3, 15, 18, 4, 0, 2};
  for (int i = 0; i < 3; ++i) {
    ds.graphs.push_back(graph::generate_random_graph(rng, 5, 6));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    std::vector<float> f(20);
    for (auto& v : f) v = rng.next_float(-1, 1);
    ds.node_features.push_back(std::move(f));
    ds.edge_features.emplace_back();
  }
  const FunctionalExecutor exec(make_gcn(4, 2, 3));
  const Matrix out = exec.run_dataset(ds);
  EXPECT_EQ(out.rows(), 15U);  // per-vertex outputs stacked
  EXPECT_EQ(out.cols(), 2U);
}

TEST(Functional, ReadoutModelYieldsOneRowPerGraph) {
  Rng rng(15);
  graph::Dataset ds;
  ds.spec = {"mols", 2, 8, 8, 3, 2, 5};
  for (int i = 0; i < 2; ++i) {
    ds.graphs.push_back(graph::generate_molecule_graph(rng, 4, 4));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    std::vector<float> f(12);
    for (auto& v : f) v = rng.next_float(-1, 1);
    ds.node_features.push_back(std::move(f));
    std::vector<float> e(8);
    for (auto& v : e) v = rng.next_float(-1, 1);
    ds.edge_features.push_back(std::move(e));
  }
  const FunctionalExecutor exec(make_mpnn(3, 2, 5, 4, 1));
  const Matrix out = exec.run_dataset(ds);
  EXPECT_EQ(out.rows(), 2U);
  EXPECT_EQ(out.cols(), 5U);
}

TEST(Functional, WidthMismatchThrows) {
  const FunctionalExecutor exec(make_gcn(6, 3));
  const auto g = test_graph();
  EXPECT_THROW(exec.run(g, random_features(g.num_nodes(), 5), {}),
               std::invalid_argument);
}

TEST(Functional, ActivationsApplied) {
  // ReLU output must be non-negative.
  const FunctionalExecutor exec(make_gcn(6, 3, 4));
  const auto g = test_graph();
  const Matrix h1 =
      exec.run_layer(0, g, random_features(g.num_nodes(), 6), {});
  for (const float v : h1.data()) EXPECT_GE(v, 0.0F);
}

}  // namespace
}  // namespace gnna::gnn
