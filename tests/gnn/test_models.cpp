#include "gnn/model.hpp"

#include <gtest/gtest.h>

#include "gnn/weights.hpp"

namespace gnna::gnn {
namespace {

TEST(Models, GcnShape) {
  const ModelSpec m = make_gcn(1433, 7);
  ASSERT_EQ(m.layers.size(), 2U);
  EXPECT_EQ(m.name, "GCN");
  EXPECT_EQ(m.layers[0].kind, LayerKind::kConv);
  EXPECT_EQ(m.layers[0].in_features, 1433U);
  EXPECT_EQ(m.layers[0].out_features, 16U);
  EXPECT_EQ(m.layers[0].act, Activation::kRelu);
  EXPECT_EQ(m.layers[0].norm, AggNorm::kSymNorm);
  EXPECT_EQ(m.layers[1].out_features, 7U);
  EXPECT_EQ(m.input_features(), 1433U);
  EXPECT_EQ(m.output_features(), 7U);
}

TEST(Models, GatShape) {
  const ModelSpec m = make_gat(1433, 7);
  ASSERT_EQ(m.layers.size(), 2U);
  EXPECT_EQ(m.layers[0].kind, LayerKind::kAttentionConv);
  EXPECT_EQ(m.layers[0].heads, 8U);
  EXPECT_EQ(m.layers[0].out_features, 64U);
  EXPECT_EQ(m.layers[0].head_width(), 8U);
  EXPECT_EQ(m.layers[1].heads, 1U);
  EXPECT_EQ(m.layers[1].out_features, 7U);
  // Attention normalization dropped => plain sum aggregation.
  EXPECT_EQ(m.layers[0].norm, AggNorm::kSum);
}

TEST(Models, MpnnShape) {
  const ModelSpec m = make_mpnn(13, 5, 73);
  ASSERT_EQ(m.layers.size(), 5U);  // embed + 3 steps + readout
  EXPECT_EQ(m.layers[0].kind, LayerKind::kProject);
  for (int t = 1; t <= 3; ++t) {
    EXPECT_EQ(m.layers[t].kind, LayerKind::kMessagePass);
    EXPECT_EQ(m.layers[t].edge_features, 5U);
    EXPECT_EQ(m.layers[t].edge_hidden, 128U);
    EXPECT_FALSE(m.layers[t].include_self);
  }
  EXPECT_EQ(m.layers.back().kind, LayerKind::kReadout);
  EXPECT_EQ(m.output_features(), 73U);
}

TEST(Models, PgnnShape) {
  const ModelSpec m = make_pgnn(1, 3);
  ASSERT_EQ(m.layers.size(), 2U);
  for (const auto& l : m.layers) {
    EXPECT_EQ(l.kind, LayerKind::kMultiHopConv);
    EXPECT_EQ(l.hops, 3U);
  }
  EXPECT_EQ(m.layers[0].in_features, 1U);
  EXPECT_EQ(m.layers[0].out_features, 8U);
  EXPECT_EQ(m.layers[1].out_features, 3U);
  EXPECT_THROW(make_pgnn(1, 3, 8, 3, 0), std::invalid_argument);
}

TEST(Models, BenchmarkMapping) {
  EXPECT_EQ(benchmark_dataset(Benchmark::kGcnCora), graph::DatasetId::kCora);
  EXPECT_EQ(benchmark_dataset(Benchmark::kGatCora), graph::DatasetId::kCora);
  EXPECT_EQ(benchmark_dataset(Benchmark::kMpnnQm9),
            graph::DatasetId::kQm9_1000);
  EXPECT_EQ(benchmark_dataset(Benchmark::kPgnnDblp),
            graph::DatasetId::kDblp1);
  EXPECT_EQ(benchmark_name(Benchmark::kGcnPubmed), "GCN/Pubmed");
}

TEST(Models, BenchmarkModelsSizedForDatasets) {
  for (const Benchmark b : kAllBenchmarks) {
    const ModelSpec m = make_benchmark_model(b);
    const auto& spec = graph::dataset_spec(benchmark_dataset(b));
    EXPECT_EQ(m.input_features(), spec.vertex_features) << benchmark_name(b);
    EXPECT_EQ(m.output_features(), spec.output_features)
        << benchmark_name(b);
  }
}

TEST(Models, ToStringCoverage) {
  EXPECT_EQ(to_string(LayerKind::kConv), "conv");
  EXPECT_EQ(to_string(LayerKind::kMessagePass), "message-pass");
  EXPECT_EQ(to_string(LayerKind::kMultiHopConv), "multi-hop-conv");
  EXPECT_EQ(to_string(Activation::kRelu), "relu");
  EXPECT_EQ(to_string(Activation::kLeakyRelu), "leaky-relu");
}

TEST(Weights, ShapesMatchLayers) {
  const ModelSpec m = make_mpnn(13, 5, 73, 16, 1);
  const ModelWeights w = make_weights(m);
  ASSERT_EQ(w.layers.size(), m.layers.size());
  // Embed.
  EXPECT_EQ(w.layers[0].w.rows(), 13U);
  EXPECT_EQ(w.layers[0].w.cols(), 16U);
  // Message pass: edge MLP 5 -> 128 -> 256, GRU 16x16 gates.
  EXPECT_EQ(w.layers[1].edge_w1.rows(), 5U);
  EXPECT_EQ(w.layers[1].edge_w1.cols(), 128U);
  EXPECT_EQ(w.layers[1].edge_w2.cols(), 256U);
  EXPECT_EQ(w.layers[1].gru_wz.rows(), 16U);
  // Readout.
  EXPECT_EQ(w.layers[2].w.cols(), 73U);
}

TEST(Weights, DeterministicBySeed) {
  ModelSpec m = make_gcn(10, 3);
  m.weight_seed = 5;
  const ModelWeights a = make_weights(m);
  const ModelWeights b = make_weights(m);
  EXPECT_EQ(a.layers[0].w, b.layers[0].w);
  m.weight_seed = 6;
  const ModelWeights c = make_weights(m);
  EXPECT_NE(a.layers[0].w, c.layers[0].w);
}

TEST(Weights, GatPerHead) {
  const ModelSpec m = make_gat(10, 3, 4, 5);
  const ModelWeights w = make_weights(m);
  EXPECT_EQ(w.layers[0].head_w.size(), 4U);
  EXPECT_EQ(w.layers[0].head_a.size(), 4U);
  EXPECT_EQ(w.layers[0].head_w[0].cols(), 5U);
  EXPECT_EQ(w.layers[0].head_a[0].size(), 10U);  // 2 * head width
}

TEST(Weights, PgnnHopMatrices) {
  const ModelSpec m = make_pgnn(2, 3, 8, 3, 1);
  const ModelWeights w = make_weights(m);
  // W_self + one per hop.
  EXPECT_EQ(w.layers[0].hop_w.size(), 4U);
  EXPECT_EQ(w.layers[0].hop_w[0].rows(), 2U);
  EXPECT_EQ(w.layers[0].hop_w[0].cols(), 3U);
}

}  // namespace
}  // namespace gnna::gnn
