#include "gnn/workload.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace gnna::gnn {
namespace {

graph::Dataset fixed_dataset(NodeId n, EdgeId e, std::uint32_t vf,
                             std::uint32_t ef = 0) {
  Rng rng(n * 7 + e);
  graph::Dataset ds;
  ds.spec = {"wl", 1, n, e, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, n, e));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{n} * vf, 0.0F);
  ds.edge_features.emplace_back(std::size_t{e} * ef, 0.0F);
  return ds;
}

TEST(Workload, GcnDenseMacsFormula) {
  const auto ds = fixed_dataset(100, 300, 16);
  const WorkProfile wp = profile_work(make_gcn(16, 3, 8), ds);
  ASSERT_EQ(wp.layers.size(), 2U);
  EXPECT_EQ(wp.layers[0].dense_macs, 100ULL * 16 * 8);
  EXPECT_EQ(wp.layers[1].dense_macs, 100ULL * 8 * 3);
}

TEST(Workload, GcnAggAddsCountEdgesAndSelf) {
  const auto ds = fixed_dataset(50, 120, 4);
  const WorkProfile wp = profile_work(make_gcn(4, 2, 4), ds);
  const std::uint64_t s = ds.undirected[0].num_edges();
  EXPECT_EQ(wp.layers[0].agg_adds, (s + 50) * 4);
}

TEST(Workload, GatEdgeMacs) {
  const auto ds = fixed_dataset(40, 80, 8);
  const WorkProfile wp = profile_work(make_gat(8, 3, 2, 4), ds);
  const std::uint64_t s = ds.undirected[0].num_edges();
  // (edges + self) * heads * 3 * head_width.
  EXPECT_EQ(wp.layers[0].edge_macs, (s + 40) * 2ULL * 3 * 4);
}

TEST(Workload, MpnnEdgeNetworkDominates) {
  const auto ds = fixed_dataset(30, 40, 5, 3);
  const WorkProfile wp = profile_work(make_mpnn(5, 3, 4, 16, 1), ds);
  const std::uint64_t s = ds.undirected[0].num_edges();
  const auto& mp = wp.layers[1];
  EXPECT_EQ(mp.edge_macs, s * (3ULL * 128 + 128ULL * 256 + 256ULL));
  EXPECT_EQ(mp.dense_macs, 30ULL * 6 * 256);
  EXPECT_GT(mp.edge_macs, mp.dense_macs);
}

TEST(Workload, PgnnAggScalesWithApplications) {
  const auto ds = fixed_dataset(30, 60, 2);
  const WorkProfile wp = profile_work(make_pgnn(2, 3, 4, 3, 1), ds);
  const std::uint64_t s = ds.undirected[0].num_edges();
  // 2^(hops-1) = 4 applications of A at width 2.
  EXPECT_EQ(wp.layers[0].agg_adds, 4 * s * 2);
  EXPECT_EQ(wp.layers[0].dense_macs, 30ULL * 4 * 2 * 3);
}

TEST(Workload, ReadoutPerGraph) {
  Rng rng(9);
  graph::Dataset ds;
  ds.spec = {"mols", 4, 20, 16, 3, 0, 7};
  for (int i = 0; i < 4; ++i) {
    ds.graphs.push_back(graph::generate_random_graph(rng, 5, 4));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    ds.node_features.emplace_back(15, 0.0F);
    ds.edge_features.emplace_back();
  }
  ModelSpec m;
  LayerSpec l;
  l.kind = LayerKind::kReadout;
  l.name = "ro";
  l.in_features = 3;
  l.out_features = 7;
  m.layers = {l};
  const WorkProfile wp = profile_work(m, ds);
  EXPECT_EQ(wp.layers[0].dense_macs, 4ULL * 3 * 7);
  EXPECT_EQ(wp.layers[0].agg_adds, 20ULL * 3);
  EXPECT_EQ(wp.layers[0].feature_write_bytes, 4ULL * 7 * 4);
}

TEST(Workload, TotalsSumLayers) {
  const auto ds = fixed_dataset(50, 100, 8);
  const WorkProfile wp = profile_work(make_gcn(8, 3, 4), ds);
  const LayerWork t = wp.totals();
  std::uint64_t macs = 0;
  std::uint64_t bytes = 0;
  for (const auto& l : wp.layers) {
    macs += l.dense_macs;
    bytes += l.total_bytes();
  }
  EXPECT_EQ(t.dense_macs, macs);
  EXPECT_EQ(t.total_bytes(), bytes);
}

TEST(Workload, FlopsCountMacsTwice) {
  LayerWork w;
  w.dense_macs = 10;
  w.edge_macs = 5;
  w.agg_adds = 3;
  EXPECT_EQ(w.total_flops(), 33U);
}

TEST(Workload, LaunchesScaleWithGraphCount) {
  Rng rng(10);
  graph::Dataset one;
  one.spec = {"a", 1, 5, 4, 3, 0, 2};
  one.graphs.push_back(graph::generate_random_graph(rng, 5, 4));
  one.undirected.push_back(one.graphs[0].symmetrized());
  one.node_features.emplace_back(15, 0.0F);
  one.edge_features.emplace_back();

  graph::Dataset many;
  many.spec = {"b", 10, 50, 40, 3, 0, 2};
  for (int i = 0; i < 10; ++i) {
    many.graphs.push_back(graph::generate_random_graph(rng, 5, 4));
    many.undirected.push_back(many.graphs.back().symmetrized());
    many.node_features.emplace_back(15, 0.0F);
    many.edge_features.emplace_back();
  }
  const auto m = make_gcn(3, 2, 4);
  EXPECT_EQ(profile_work(m, many).totals().launches,
            10 * profile_work(m, one).totals().launches);
}

}  // namespace
}  // namespace gnna::gnn
