#include "mem/memory.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace gnna::mem {
namespace {

constexpr Frequency kClk = Frequency::giga_hertz(1.0);  // 1 cycle = 1 ns

struct Rig {
  noc::MeshNetwork net{2, 1};
  EndpointId requester;
  EndpointId mem_ep;
  std::optional<MemoryController> mem;

  explicit Rig(MemParams params = default_params()) {
    requester = net.add_endpoint(0, 0);
    mem_ep = net.add_endpoint(1, 0);
    net.finalize();
    mem.emplace(net, mem_ep, params, kClk);
  }

  static MemParams default_params() {
    MemParams p;
    p.bandwidth = Bandwidth::gb_per_s(64.0);  // 64 B/cycle at 1 GHz
    p.latency_ns = 20.0;                      // 20 cycles
    return p;
  }

  void send_read(Addr addr, std::uint64_t bytes, std::uint64_t tag = 0) {
    noc::Message m;
    m.src = requester;
    m.dst = mem_ep;
    m.kind = noc::MsgKind::kMemReadReq;
    m.a = addr;
    m.b = bytes;
    m.c = tag;
    net.send(m);
  }

  void send_write(Addr addr, std::uint64_t bytes) {
    noc::Message m;
    m.src = requester;
    m.dst = mem_ep;
    m.kind = noc::MsgKind::kMemWriteReq;
    m.payload_bytes = static_cast<std::uint32_t>(bytes);
    m.a = addr;
    m.b = bytes;
    net.send(m);
  }

  /// Run until `n` responses arrive (or cycle budget exhausted).
  std::vector<noc::Message> collect(std::size_t n, Cycle budget = 100000) {
    std::vector<noc::Message> out;
    for (Cycle c = 0; c < budget && out.size() < n; ++c) {
      mem->tick();
      net.tick();
      while (auto m = net.poll(requester)) out.push_back(*m);
    }
    return out;
  }
};

TEST(Memory, ReadGetsResponseWithEchoedFields) {
  Rig rig;
  rig.send_read(0x1000, 256, /*tag=*/77);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].kind, noc::MsgKind::kMemReadResp);
  EXPECT_EQ(out[0].a, 0x1000U);
  EXPECT_EQ(out[0].b, 256U);
  EXPECT_EQ(out[0].c, 77U);
  EXPECT_EQ(out[0].payload_bytes, 256U);
}

TEST(Memory, ResponseRoutedToReplyTo) {
  noc::MeshNetwork net(2, 1);
  const EndpointId requester = net.add_endpoint(0, 0);
  const EndpointId other = net.add_endpoint(0, 0);
  const EndpointId mem_ep = net.add_endpoint(1, 0);
  net.finalize();
  MemoryController mem(net, mem_ep, Rig::default_params(), kClk);

  noc::Message m;
  m.src = requester;
  m.dst = mem_ep;
  m.reply_to = other;  // indirect request: data goes elsewhere
  m.kind = noc::MsgKind::kMemReadReq;
  m.a = 0;
  m.b = 64;
  net.send(m);
  bool got = false;
  for (Cycle c = 0; c < 1000 && !got; ++c) {
    mem.tick();
    net.tick();
    if (net.poll(other)) got = true;
    EXPECT_EQ(net.delivery_queue_depth(requester), 0U);
  }
  EXPECT_TRUE(got);
}

TEST(Memory, FixedLatencyFloor) {
  Rig rig;
  rig.send_read(0, 64);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  // NoC transit (~5 cycles each way) + 1 cycle transfer + 20 cycles DRAM
  // latency: well above 26, well below 60.
  const Cycle rtt = out[0].delivered_at;
  EXPECT_GE(rtt, 26U);
  EXPECT_LE(rtt, 60U);
}

TEST(Memory, BandwidthPacesLargeTransfers) {
  Rig rig;
  // 100 lines = 6400 bytes = 100 cycles of transfer at 64 B/cycle.
  rig.send_read(0, 6400);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 100U);
}

TEST(Memory, BackToBackReadsSerializeOnTheBus) {
  Rig rig;
  const int kReqs = 10;
  for (int i = 0; i < kReqs; ++i) rig.send_read(i * 4096, 6400, i);
  const auto out = rig.collect(kReqs);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kReqs));
  // Total time must cover sequential transfers: 10 x 100 cycles.
  EXPECT_GE(out.back().delivered_at, 1000U);
  // In-order service.
  for (int i = 0; i < kReqs; ++i) EXPECT_EQ(out[i].c, static_cast<std::uint64_t>(i));
}

TEST(Memory, GranularityWastesBandwidthOnUnalignedRequests) {
  Rig rig;
  rig.send_read(60, 8);  // straddles a 64B boundary: 2 lines served
  rig.collect(1);
  EXPECT_EQ(rig.mem->stats().bytes_requested.value(), 8U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 128U);
}

TEST(Memory, AlignedFullLineIsNotPadded) {
  Rig rig;
  rig.send_read(128, 64);
  rig.collect(1);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 64U);
}

TEST(Memory, WritesConsumeBandwidthSilently) {
  Rig rig;
  rig.send_write(0, 640);
  for (Cycle c = 0; c < 100; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_EQ(rig.mem->stats().write_requests.value(), 1U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 640U);
  EXPECT_EQ(rig.net.delivery_queue_depth(rig.requester), 0U);
}

TEST(Memory, WriteDelaysSubsequentRead) {
  Rig rig;
  rig.send_write(0, 6400);  // 100 cycles of bus time
  rig.send_read(8192, 64, 1);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 100U);
}

TEST(Memory, QueueAdmitsAtMost32) {
  Rig rig;
  for (int i = 0; i < 64; ++i) rig.send_read(i * 4096, 64 * 1000, i);
  // Give the controller time to admit what it can.
  for (Cycle c = 0; c < 200; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_LE(rig.mem->stats().queue_depth.max(), 32.0);
  // Everything still completes.
  const auto out = rig.collect(64, 10'000'000);
  EXPECT_EQ(out.size(), 64U);
}

TEST(Memory, WritesOccupyQueueSlotsAndBackpressure) {
  // Regression: writes used to bypass the 32-entry in-order queue entirely
  // (admitted in unbounded numbers, invisible to idle()). With a slow bus
  // (0.64 B/cycle: one 64B line takes 100 cycles) and 40 pending writes,
  // only 32 may hold queue slots; the rest must wait in the NoC delivery
  // queue, and the controller must not report idle.
  MemParams p = Rig::default_params();
  p.bandwidth = Bandwidth::gb_per_s(0.64);
  Rig rig(p);
  const int kWrites = 40;
  for (int i = 0; i < kWrites; ++i) rig.send_write(i * 64, 64);
  for (Cycle c = 0; c < 300; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_EQ(rig.mem->queue_depth(), 32U);
  EXPECT_GT(rig.net.delivery_queue_depth(rig.mem_ep), 0U);
  EXPECT_FALSE(rig.mem->idle());

  // A read sent behind the writes is serviced in order: its response can
  // only arrive after all 40 line transfers (~4000 cycles of bus time).
  rig.send_read(1 << 20, 64, 7);
  const auto out = rig.collect(1, 100000);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 4000U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 64U * kWrites + 64U);
  EXPECT_TRUE(rig.mem->idle());
}

TEST(Memory, IdleSemantics) {
  Rig rig;
  EXPECT_TRUE(rig.mem->idle());
  rig.send_read(0, 64);
  rig.collect(1);
  EXPECT_TRUE(rig.mem->idle());
}

TEST(Memory, MeanBandwidthReflectsServedBytes) {
  Rig rig;
  rig.send_read(0, 64000);
  rig.collect(1);
  const double bw = rig.mem->mean_bandwidth_bytes_per_s(rig.net.now());
  EXPECT_GT(bw, 0.0);
  EXPECT_LE(bw, 64e9 * 1.01);
}

TEST(Memory, OversizedRequestRejectedAtAdmission) {
  // noc::Message::payload_bytes is 32 bits: a >= 4GiB read used to be
  // silently truncated into a tiny response packet. It must be rejected
  // with a diagnostic at admission instead.
  Rig rig;
  rig.send_read(0, 1ULL << 32, 9);
  EXPECT_THROW(rig.collect(1, 100), std::invalid_argument);
}

TEST(Memory, QueueDepthMeanIsTimeWeighted) {
  // One 6400-byte read occupies the only busy stretch: depth is 1 for
  // ~120 cycles (100 transfer + 20 latency) and 0 only for the few
  // arrival cycles, so the time-weighted mean must be near 1. The old
  // change-weighted sampling averaged the change points {0, 1, 0} ≈ 0.33.
  Rig rig;
  rig.send_read(0, 6400);
  rig.collect(1);
  const Accumulator& depth = rig.mem->stats().queue_depth;
  EXPECT_GT(depth.mean(), 0.8);
  EXPECT_LE(depth.mean(), 1.0);
  EXPECT_DOUBLE_EQ(depth.max(), 1.0);
}

TEST(Memory, FreedSlotIsReusableOnlyNextTick) {
  // Admission runs before retirement within one tick(), so a slot freed
  // by a retiring request is unusable until the next tick — the intended
  // 1-cycle slot-recycle latency.
  MemParams p = Rig::default_params();
  p.queue_entries = 1;
  Rig rig(p);
  rig.send_read(0, 64, 1);
  rig.send_read(4096, 64, 2);

  std::vector<noc::Message> out;
  bool saw_first_occupied = false;
  bool saw_gap_before_second = false;  // the 1-cycle recycle bubble
  for (Cycle c = 0; c < 1000 && out.size() < 2; ++c) {
    rig.mem->tick();
    const std::size_t depth = rig.mem->queue_depth();
    if (out.empty() && depth == 1) saw_first_occupied = true;
    if (saw_first_occupied && depth == 0 && out.size() < 2 &&
        rig.net.delivery_queue_depth(rig.mem_ep) > 0) {
      // First request retired, second delivered but not yet admitted.
      saw_gap_before_second = true;
    }
    rig.net.tick();
    while (auto m = rig.net.poll(rig.requester)) out.push_back(*m);
  }
  ASSERT_EQ(out.size(), 2U);
  EXPECT_TRUE(saw_first_occupied);
  EXPECT_TRUE(saw_gap_before_second);
  EXPECT_EQ(out[0].c, 1U);
  EXPECT_EQ(out[1].c, 2U);
}

// ---- FR-FCFS scheduler ----

MemParams frfcfs_params() {
  MemParams p = Rig::default_params();
  p.scheduler = MemScheduler::kFrFcfs;
  return p;
}

TEST(Memory, FrfcfsValidatesParams) {
  MemParams p = frfcfs_params();
  p.row_bytes = 96;  // not a multiple of the 64B interleave
  noc::MeshNetwork net(2, 1);
  net.add_endpoint(0, 0);
  const EndpointId ep = net.add_endpoint(1, 0);
  net.finalize();
  EXPECT_THROW(MemoryController(net, ep, p, kClk), std::invalid_argument);
  p.row_bytes = 2048;
  p.banks = 0;
  EXPECT_THROW(MemoryController(net, ep, p, kClk), std::invalid_argument);
}

TEST(Memory, FrfcfsSchedulerNameRoundTrips) {
  EXPECT_EQ(mem_scheduler_by_name("frfcfs"), MemScheduler::kFrFcfs);
  EXPECT_EQ(mem_scheduler_by_name("fr-fcfs"), MemScheduler::kFrFcfs);
  EXPECT_EQ(mem_scheduler_by_name("in_order"), MemScheduler::kInOrder);
  EXPECT_EQ(mem_scheduler_by_name("in-order"), MemScheduler::kInOrder);
  EXPECT_FALSE(mem_scheduler_by_name("fifo").has_value());
  EXPECT_STREQ(mem_scheduler_name(MemScheduler::kFrFcfs), "frfcfs");
}

TEST(Memory, FrfcfsRowHitOvertakesOlderRowMiss) {
  // One bank, distinct hit/miss latencies. Requests: row A (opens the
  // row), row B (miss), row A again (hit). FR-FCFS issues the ready row
  // hit before the older miss, so responses come back A1, A2, B — out of
  // request order, matched by tag.
  MemParams p = frfcfs_params();
  p.banks = 1;
  p.row_hit_ns = 10.0;
  p.row_miss_ns = 30.0;
  Rig rig(p);
  rig.send_read(0, 6400, /*tag=*/1);          // row 0: miss, opens it
  rig.send_read(1 << 20, 6400, /*tag=*/2);    // far row: miss
  rig.send_read(64, 6400, /*tag=*/3);         // row 0 again: hit
  const auto out = rig.collect(3);
  ASSERT_EQ(out.size(), 3U);
  EXPECT_EQ(out[0].c, 1U);
  EXPECT_EQ(out[1].c, 3U);  // the row hit jumped the queue
  EXPECT_EQ(out[2].c, 2U);
  EXPECT_EQ(rig.mem->row_hits(), 1U);
  EXPECT_EQ(rig.mem->row_misses(), 2U);
  EXPECT_NEAR(rig.mem->row_hit_rate(), 1.0 / 3.0, 1e-12);
}

TEST(Memory, FrfcfsStarvationCapForcesOldestEventually) {
  // A lone row-B request behind a stream of row-A hits may be bypassed at
  // most starvation_cap times before it is served next.
  MemParams p = frfcfs_params();
  p.banks = 1;
  p.starvation_cap = 2;
  Rig rig(p);
  rig.send_read(0, 6400, 1);         // opens row A
  rig.send_read(1 << 20, 6400, 9);   // row B: the starvation candidate
  rig.send_read(64, 6400, 2);        // row A hits...
  rig.send_read(128, 6400, 3);
  rig.send_read(192, 6400, 4);
  rig.send_read(256, 6400, 5);
  const auto out = rig.collect(6);
  ASSERT_EQ(out.size(), 6U);
  std::vector<std::uint64_t> tags;
  for (const auto& m : out) tags.push_back(m.c);
  // B is bypassed by tags 2 and 3 (two row hits), then forced ahead of
  // the remaining hits by the cap.
  const std::vector<std::uint64_t> expect = {1, 2, 3, 9, 4, 5};
  EXPECT_EQ(tags, expect);
}

TEST(Memory, FrfcfsPerBankStatsAndInterleave) {
  // Four consecutive 64B lines interleave across four banks; each opens
  // its bank's row (a miss), and a second round over the same lines hits.
  MemParams p = frfcfs_params();
  p.banks = 4;
  Rig rig(p);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      rig.send_read(static_cast<Addr>(i) * 64, 64,
                    static_cast<std::uint64_t>(round * 4 + i));
    }
  }
  const auto out = rig.collect(8);
  ASSERT_EQ(out.size(), 8U);
  ASSERT_EQ(rig.mem->stats().banks.size(), 4U);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.mem->stats().banks[i].row_misses.value(), 1U) << i;
    EXPECT_EQ(rig.mem->stats().banks[i].row_hits.value(), 1U) << i;
    EXPECT_GT(rig.mem->stats().banks[i].busy_cycles, 0.0) << i;
  }
  EXPECT_DOUBLE_EQ(rig.mem->row_hit_rate(), 0.5);
}

TEST(Memory, FrfcfsDegeneratesBitIdenticallyToInOrder) {
  // banks=1 and row_hit_ns == row_miss_ns == latency_ns disables the
  // row-hit preference (pure FCFS) and makes every access latency equal,
  // so response tags AND delivery cycles must match the in-order model
  // exactly — including under window backpressure.
  MemParams frf = frfcfs_params();
  frf.banks = 1;
  frf.row_hit_ns = frf.row_miss_ns = frf.latency_ns;
  frf.window_entries = 32;  // same admission capacity as queue_entries

  Rig in_order;   // default in-order params
  Rig frfcfs(frf);
  auto drive = [](Rig& rig) {
    // Mixed traffic: unaligned sizes, writes interleaved, enough requests
    // to overflow the 32-entry queue and exercise backpressure.
    for (int i = 0; i < 48; ++i) {
      if (i % 5 == 2) {
        rig.send_write(static_cast<Addr>(i) * 4096 + 60, 130);
      } else {
        rig.send_read(static_cast<Addr>(i) * 4096, 100 + i * 64,
                      static_cast<std::uint64_t>(i));
      }
    }
    return rig.collect(48 - 10, 1'000'000);  // 38 reads expected back
  };
  const auto a = drive(in_order);
  const auto b = drive(frfcfs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].c, b[i].c) << i;
    EXPECT_EQ(a[i].delivered_at, b[i].delivered_at) << i;
  }
  EXPECT_EQ(in_order.mem->stats().bytes_served.value(),
            frfcfs.mem->stats().bytes_served.value());
  // Even degenerate FR-FCFS still tracks open-row state for stats.
  EXPECT_GT(frfcfs.mem->row_misses(), 0U);
  EXPECT_EQ(in_order.mem->row_hits() + in_order.mem->row_misses(), 0U);
}

TEST(Memory, BankXorSpreadsRowStridedCampingAcrossBanks) {
  // Addresses k * (banks * row_bytes) all map to bank 0 under the plain
  // interleave (granule % banks == 0) while walking a new row each time —
  // the camping pattern. The XOR permutation folds the row index into the
  // bank, rotating the stream across all four banks.
  MemParams plain = frfcfs_params();
  plain.banks = 4;
  MemParams permuted = plain;
  permuted.bank_xor = true;
  const Addr stride = 4ULL * plain.row_bytes;  // banks * row_bytes

  Rig camp(plain);
  Rig spread(permuted);
  for (auto* rig : {&camp, &spread}) {
    for (std::uint64_t k = 0; k < 4; ++k) {
      rig->send_read(k * stride, 64, k);
    }
    ASSERT_EQ(rig->collect(4).size(), 4U);
  }

  // Without XOR: all four requests (four distinct rows) hammer bank 0.
  EXPECT_EQ(camp.mem->stats().banks[0].row_misses.value(), 4U);
  for (int b = 1; b < 4; ++b) {
    EXPECT_EQ(camp.mem->stats().banks[b].row_misses.value(), 0U) << b;
  }
  // With XOR: one request (and one row miss) per bank.
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(spread.mem->stats().banks[b].row_misses.value(), 1U) << b;
  }
  // The permutation only relabels banks; every byte is still served.
  EXPECT_EQ(camp.mem->stats().bytes_served.value(),
            spread.mem->stats().bytes_served.value());
}

TEST(Memory, BankXorIsDeterministic) {
  // Same config, same traffic, two independent controllers: response
  // order and delivery cycles must match exactly (the mapping is a pure
  // function of the address, no hidden state).
  MemParams p = frfcfs_params();
  p.banks = 8;
  p.bank_xor = true;
  auto drive = [&]() {
    Rig rig(p);
    for (int i = 0; i < 32; ++i) {
      if (i % 7 == 3) {
        rig.send_write(static_cast<Addr>(i) * 1024 + 32, 96);
      } else {
        rig.send_read(static_cast<Addr>(i) * 2048, 64 + (i % 3) * 64,
                      static_cast<std::uint64_t>(i));
      }
    }
    return rig.collect(32 - 5, 1'000'000);  // 27 reads expected back
  };
  const auto a = drive();
  const auto b = drive();
  ASSERT_EQ(a.size(), 27U);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].c, b[i].c) << i;
    EXPECT_EQ(a[i].delivered_at, b[i].delivered_at) << i;
  }
}

TEST(Memory, BankXorWithNonPowerOfTwoBanksStaysInRange) {
  // The double modulo keeps the permuted bank inside [0, banks) for a
  // non-power-of-two bank count; per-bank stats account every request.
  MemParams p = frfcfs_params();
  p.banks = 3;
  p.bank_xor = true;
  Rig rig(p);
  for (std::uint64_t k = 0; k < 12; ++k) {
    rig.send_read(k * 64 * 37, 64, k);  // scattered granules and rows
  }
  ASSERT_EQ(rig.collect(12).size(), 12U);
  ASSERT_EQ(rig.mem->stats().banks.size(), 3U);
  std::uint64_t accounted = 0;
  for (const auto& b : rig.mem->stats().banks) {
    accounted += b.row_hits.value() + b.row_misses.value();
  }
  EXPECT_EQ(accounted, 12U);
}

TEST(Memory, FrfcfsWindowBackpressuresLikeInOrderQueue) {
  MemParams p = frfcfs_params();
  p.window_entries = 4;
  Rig rig(p);
  for (int i = 0; i < 16; ++i) rig.send_read(i * 4096, 64 * 1000, i);
  for (Cycle c = 0; c < 200; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_LE(rig.mem->stats().queue_depth.max(), 4.0);
  EXPECT_GT(rig.net.delivery_queue_depth(rig.mem_ep), 0U);
  EXPECT_FALSE(rig.mem->idle());
  const auto out = rig.collect(16, 10'000'000);
  EXPECT_EQ(out.size(), 16U);
  EXPECT_TRUE(rig.mem->idle());
}

}  // namespace
}  // namespace gnna::mem
