#include "mem/memory.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace gnna::mem {
namespace {

constexpr Frequency kClk = Frequency::giga_hertz(1.0);  // 1 cycle = 1 ns

struct Rig {
  noc::MeshNetwork net{2, 1};
  EndpointId requester;
  EndpointId mem_ep;
  std::optional<MemoryController> mem;

  explicit Rig(MemParams params = default_params()) {
    requester = net.add_endpoint(0, 0);
    mem_ep = net.add_endpoint(1, 0);
    net.finalize();
    mem.emplace(net, mem_ep, params, kClk);
  }

  static MemParams default_params() {
    MemParams p;
    p.bandwidth = Bandwidth::gb_per_s(64.0);  // 64 B/cycle at 1 GHz
    p.latency_ns = 20.0;                      // 20 cycles
    return p;
  }

  void send_read(Addr addr, std::uint64_t bytes, std::uint64_t tag = 0) {
    noc::Message m;
    m.src = requester;
    m.dst = mem_ep;
    m.kind = noc::MsgKind::kMemReadReq;
    m.a = addr;
    m.b = bytes;
    m.c = tag;
    net.send(m);
  }

  void send_write(Addr addr, std::uint64_t bytes) {
    noc::Message m;
    m.src = requester;
    m.dst = mem_ep;
    m.kind = noc::MsgKind::kMemWriteReq;
    m.payload_bytes = static_cast<std::uint32_t>(bytes);
    m.a = addr;
    m.b = bytes;
    net.send(m);
  }

  /// Run until `n` responses arrive (or cycle budget exhausted).
  std::vector<noc::Message> collect(std::size_t n, Cycle budget = 100000) {
    std::vector<noc::Message> out;
    for (Cycle c = 0; c < budget && out.size() < n; ++c) {
      mem->tick();
      net.tick();
      while (auto m = net.poll(requester)) out.push_back(*m);
    }
    return out;
  }
};

TEST(Memory, ReadGetsResponseWithEchoedFields) {
  Rig rig;
  rig.send_read(0x1000, 256, /*tag=*/77);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].kind, noc::MsgKind::kMemReadResp);
  EXPECT_EQ(out[0].a, 0x1000U);
  EXPECT_EQ(out[0].b, 256U);
  EXPECT_EQ(out[0].c, 77U);
  EXPECT_EQ(out[0].payload_bytes, 256U);
}

TEST(Memory, ResponseRoutedToReplyTo) {
  noc::MeshNetwork net(2, 1);
  const EndpointId requester = net.add_endpoint(0, 0);
  const EndpointId other = net.add_endpoint(0, 0);
  const EndpointId mem_ep = net.add_endpoint(1, 0);
  net.finalize();
  MemoryController mem(net, mem_ep, Rig::default_params(), kClk);

  noc::Message m;
  m.src = requester;
  m.dst = mem_ep;
  m.reply_to = other;  // indirect request: data goes elsewhere
  m.kind = noc::MsgKind::kMemReadReq;
  m.a = 0;
  m.b = 64;
  net.send(m);
  bool got = false;
  for (Cycle c = 0; c < 1000 && !got; ++c) {
    mem.tick();
    net.tick();
    if (net.poll(other)) got = true;
    EXPECT_EQ(net.delivery_queue_depth(requester), 0U);
  }
  EXPECT_TRUE(got);
}

TEST(Memory, FixedLatencyFloor) {
  Rig rig;
  rig.send_read(0, 64);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  // NoC transit (~5 cycles each way) + 1 cycle transfer + 20 cycles DRAM
  // latency: well above 26, well below 60.
  const Cycle rtt = out[0].delivered_at;
  EXPECT_GE(rtt, 26U);
  EXPECT_LE(rtt, 60U);
}

TEST(Memory, BandwidthPacesLargeTransfers) {
  Rig rig;
  // 100 lines = 6400 bytes = 100 cycles of transfer at 64 B/cycle.
  rig.send_read(0, 6400);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 100U);
}

TEST(Memory, BackToBackReadsSerializeOnTheBus) {
  Rig rig;
  const int kReqs = 10;
  for (int i = 0; i < kReqs; ++i) rig.send_read(i * 4096, 6400, i);
  const auto out = rig.collect(kReqs);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kReqs));
  // Total time must cover sequential transfers: 10 x 100 cycles.
  EXPECT_GE(out.back().delivered_at, 1000U);
  // In-order service.
  for (int i = 0; i < kReqs; ++i) EXPECT_EQ(out[i].c, static_cast<std::uint64_t>(i));
}

TEST(Memory, GranularityWastesBandwidthOnUnalignedRequests) {
  Rig rig;
  rig.send_read(60, 8);  // straddles a 64B boundary: 2 lines served
  rig.collect(1);
  EXPECT_EQ(rig.mem->stats().bytes_requested.value(), 8U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 128U);
}

TEST(Memory, AlignedFullLineIsNotPadded) {
  Rig rig;
  rig.send_read(128, 64);
  rig.collect(1);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 64U);
}

TEST(Memory, WritesConsumeBandwidthSilently) {
  Rig rig;
  rig.send_write(0, 640);
  for (Cycle c = 0; c < 100; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_EQ(rig.mem->stats().write_requests.value(), 1U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 640U);
  EXPECT_EQ(rig.net.delivery_queue_depth(rig.requester), 0U);
}

TEST(Memory, WriteDelaysSubsequentRead) {
  Rig rig;
  rig.send_write(0, 6400);  // 100 cycles of bus time
  rig.send_read(8192, 64, 1);
  const auto out = rig.collect(1);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 100U);
}

TEST(Memory, QueueAdmitsAtMost32) {
  Rig rig;
  for (int i = 0; i < 64; ++i) rig.send_read(i * 4096, 64 * 1000, i);
  // Give the controller time to admit what it can.
  for (Cycle c = 0; c < 200; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_LE(rig.mem->stats().queue_depth.max(), 32.0);
  // Everything still completes.
  const auto out = rig.collect(64, 10'000'000);
  EXPECT_EQ(out.size(), 64U);
}

TEST(Memory, WritesOccupyQueueSlotsAndBackpressure) {
  // Regression: writes used to bypass the 32-entry in-order queue entirely
  // (admitted in unbounded numbers, invisible to idle()). With a slow bus
  // (0.64 B/cycle: one 64B line takes 100 cycles) and 40 pending writes,
  // only 32 may hold queue slots; the rest must wait in the NoC delivery
  // queue, and the controller must not report idle.
  MemParams p = Rig::default_params();
  p.bandwidth = Bandwidth::gb_per_s(0.64);
  Rig rig(p);
  const int kWrites = 40;
  for (int i = 0; i < kWrites; ++i) rig.send_write(i * 64, 64);
  for (Cycle c = 0; c < 300; ++c) {
    rig.mem->tick();
    rig.net.tick();
  }
  EXPECT_EQ(rig.mem->queue_depth(), 32U);
  EXPECT_GT(rig.net.delivery_queue_depth(rig.mem_ep), 0U);
  EXPECT_FALSE(rig.mem->idle());

  // A read sent behind the writes is serviced in order: its response can
  // only arrive after all 40 line transfers (~4000 cycles of bus time).
  rig.send_read(1 << 20, 64, 7);
  const auto out = rig.collect(1, 100000);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 4000U);
  EXPECT_EQ(rig.mem->stats().bytes_served.value(), 64U * kWrites + 64U);
  EXPECT_TRUE(rig.mem->idle());
}

TEST(Memory, IdleSemantics) {
  Rig rig;
  EXPECT_TRUE(rig.mem->idle());
  rig.send_read(0, 64);
  rig.collect(1);
  EXPECT_TRUE(rig.mem->idle());
}

TEST(Memory, MeanBandwidthReflectsServedBytes) {
  Rig rig;
  rig.send_read(0, 64000);
  rig.collect(1);
  const double bw = rig.mem->mean_bandwidth_bytes_per_s(rig.net.now());
  EXPECT_GT(bw, 0.0);
  EXPECT_LE(bw, 64e9 * 1.01);
}

}  // namespace
}  // namespace gnna::mem
