#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "linalg/ops.hpp"

namespace gnna::linalg {
namespace {

graph::Graph small_graph() {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 1);
  return std::move(b).build();
}

TEST(CsrMatrix, AdjacencyMatchesGraph) {
  const auto g = small_graph();
  const CsrMatrix a = CsrMatrix::adjacency(g);
  EXPECT_EQ(a.rows(), 4U);
  EXPECT_EQ(a.nnz(), 4U);
  const Matrix d = a.to_dense();
  EXPECT_FLOAT_EQ(d(0, 1), 1.0F);
  EXPECT_FLOAT_EQ(d(3, 1), 1.0F);
  EXPECT_FLOAT_EQ(d(1, 0), 0.0F);
}

TEST(CsrMatrix, InvalidCsrThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0F}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 2}, {0}, {1.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, Sparsity) {
  const CsrMatrix a = CsrMatrix::adjacency(small_graph());
  EXPECT_DOUBLE_EQ(a.sparsity(), 1.0 - 4.0 / 16.0);
}

TEST(Spmm, MatchesDenseMatmul) {
  Rng rng(5);
  const auto g = graph::generate_random_graph(rng, 30, 120);
  const CsrMatrix a = CsrMatrix::adjacency(g);
  const Matrix x = Matrix::random(rng, 30, 7);
  EXPECT_LT(max_abs_diff(spmm(a, x), matmul(a.to_dense(), x)), 1e-4);
}

TEST(Spmm, ShapeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::adjacency(small_graph());
  EXPECT_THROW(spmm(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(GcnAdjacency, RowsIncludeSelf) {
  const CsrMatrix a = CsrMatrix::gcn_normalized_adjacency(small_graph());
  const Matrix d = a.to_dense();
  for (std::size_t v = 0; v < 4; ++v) EXPECT_GT(d(v, v), 0.0F);
}

TEST(GcnAdjacency, IsSymmetric) {
  Rng rng(6);
  const auto g = graph::generate_random_graph(rng, 20, 60);
  const Matrix d = CsrMatrix::gcn_normalized_adjacency(g).to_dense();
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_NEAR(d(i, j), d(j, i), 1e-6);
    }
  }
}

TEST(GcnAdjacency, ValuesMatchClosedForm) {
  // D^-1/2 (A+I) D^-1/2 over the symmetrized graph.
  const auto g = small_graph();
  const auto sym = g.symmetrized().with_self_loops();
  const Matrix d = CsrMatrix::gcn_normalized_adjacency(g).to_dense();
  for (NodeId v = 0; v < 4; ++v) {
    for (const NodeId u : sym.neighbors(v)) {
      const float expect =
          1.0F / std::sqrt(static_cast<float>(sym.out_degree(v)) *
                           static_cast<float>(sym.out_degree(u)));
      EXPECT_NEAR(d(v, u), expect, 1e-6);
    }
  }
}

TEST(MeanAdjacency, RowsSumToOne) {
  Rng rng(7);
  const auto g = graph::generate_random_graph(rng, 25, 80);
  const Matrix d = CsrMatrix::mean_adjacency(g).to_dense();
  for (std::size_t v = 0; v < 25; ++v) {
    float sum = 0.0F;
    for (std::size_t u = 0; u < 25; ++u) sum += d(v, u);
    EXPECT_NEAR(sum, 1.0F, 1e-5);
  }
}

TEST(Ops, ReluClampsNegatives) {
  Matrix m = Matrix::from_rows(1, 3, {-1.0F, 0.0F, 2.0F});
  relu_inplace(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(m(0, 2), 2.0F);
}

TEST(Ops, LeakyRelu) {
  EXPECT_FLOAT_EQ(leaky_relu(-1.0F), -0.2F);
  EXPECT_FLOAT_EQ(leaky_relu(3.0F), 3.0F);
}

TEST(Ops, SigmoidRange) {
  EXPECT_NEAR(sigmoid(0.0F), 0.5F, 1e-6);
  EXPECT_GT(sigmoid(10.0F), 0.99F);
  EXPECT_LT(sigmoid(-10.0F), 0.01F);
}

TEST(Ops, RowSoftmaxSumsToOne) {
  Rng rng(8);
  Matrix m = Matrix::random(rng, 5, 9, -10.0F, 10.0F);
  row_softmax_inplace(m);
  for (std::size_t r = 0; r < 5; ++r) {
    float sum = 0.0F;
    for (const float x : m.row(r)) {
      EXPECT_GE(x, 0.0F);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5);
  }
}

TEST(Ops, SoftmaxSpanHandlesExtremes) {
  std::vector<float> xs = {1000.0F, 1000.0F};
  softmax_inplace(xs);
  EXPECT_NEAR(xs[0], 0.5F, 1e-6);
  EXPECT_NEAR(xs[1], 0.5F, 1e-6);
}

}  // namespace
}  // namespace gnna::linalg
