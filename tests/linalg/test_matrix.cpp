#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gnna::linalg {
namespace {

TEST(Matrix, ConstructionAndFill) {
  const Matrix m(2, 3, 1.5F);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  EXPECT_EQ(m.size(), 6U);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5F);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_NO_THROW(Matrix::from_rows(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix::from_rows(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(i(r, c), r == c ? 1.0F : 0.0F);
    }
  }
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 2);
  m.row(1)[0] = 7.0F;
  EXPECT_FLOAT_EQ(m(1, 0), 7.0F);
}

TEST(Matmul, HandComputed) {
  const Matrix a = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = Matrix::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0F);
}

TEST(Matmul, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = Matrix::random(rng, 4, 4);
  EXPECT_EQ(matmul(a, Matrix::identity(4)), a);
  EXPECT_EQ(matmul(Matrix::identity(4), a), a);
}

TEST(Matmul, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, Associativity) {
  Rng rng(2);
  const Matrix a = Matrix::random(rng, 3, 4);
  const Matrix b = Matrix::random(rng, 4, 5);
  const Matrix c = Matrix::random(rng, 5, 2);
  EXPECT_LT(max_abs_diff(matmul(matmul(a, b), c), matmul(a, matmul(b, c))),
            1e-4);
}

TEST(Add, Elementwise) {
  const Matrix a = Matrix::from_rows(1, 2, {1, 2});
  const Matrix b = Matrix::from_rows(1, 2, {10, 20});
  const Matrix c = add(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0F);
}

TEST(Add, ShapeMismatchThrows) {
  EXPECT_THROW(add(Matrix(1, 2), Matrix(2, 1)), std::invalid_argument);
}

TEST(AddRowBias, AddsToEveryRow) {
  Matrix a(2, 2, 1.0F);
  const std::vector<float> bias = {10.0F, 20.0F};
  const Matrix c = add_row_bias(a, bias);
  EXPECT_FLOAT_EQ(c(0, 0), 11.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 21.0F);
}

TEST(AddRowBias, LengthMismatchThrows) {
  const std::vector<float> bias = {1.0F};
  EXPECT_THROW(add_row_bias(Matrix(1, 2), bias), std::invalid_argument);
}

TEST(Transpose, RoundTrip) {
  Rng rng(3);
  const Matrix a = Matrix::random(rng, 3, 5);
  const Matrix t = transpose(a);
  EXPECT_EQ(t.rows(), 5U);
  EXPECT_EQ(t.cols(), 3U);
  EXPECT_EQ(transpose(t), a);
}

TEST(Hconcat, Layout) {
  const Matrix a = Matrix::from_rows(2, 1, {1, 2});
  const Matrix b = Matrix::from_rows(2, 2, {3, 4, 5, 6});
  const Matrix c = hconcat(a, b);
  EXPECT_EQ(c.cols(), 3U);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(c(0, 2), 4.0F);
  EXPECT_FLOAT_EQ(c(1, 1), 5.0F);
}

TEST(Hconcat, RowMismatchThrows) {
  EXPECT_THROW(hconcat(Matrix(1, 1), Matrix(2, 1)), std::invalid_argument);
}

TEST(MaxAbsDiff, DetectsDifference) {
  const Matrix a = Matrix::from_rows(1, 2, {1, 2});
  const Matrix b = Matrix::from_rows(1, 2, {1, 2.5});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5);
}

TEST(MaxAbsDiff, ShapeMismatchIsInfinite) {
  EXPECT_TRUE(std::isinf(max_abs_diff(Matrix(1, 2), Matrix(2, 1))));
}

TEST(Matrix, RandomRespectsBounds) {
  Rng rng(4);
  const Matrix m = Matrix::random(rng, 10, 10, -0.5F, 0.5F);
  for (const float x : m.data()) {
    EXPECT_GE(x, -0.5F);
    EXPECT_LT(x, 0.5F);
  }
}

}  // namespace
}  // namespace gnna::linalg
