#include "graph/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gnna::graph {
namespace {

/// Every synthetic dataset must match its declared Table V row exactly.
class DatasetTableV : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetTableV, GeneratedMatchesDeclaredStats) {
  const Dataset ds = make_dataset(GetParam());
  const DatasetSpec& spec = ds.spec;
  EXPECT_EQ(ds.graphs.size(), spec.num_graphs);
  EXPECT_EQ(ds.total_nodes(), spec.total_nodes);
  EXPECT_EQ(ds.total_edges(), spec.total_edges);
}

TEST_P(DatasetTableV, FeatureMatricesSized) {
  const Dataset ds = make_dataset(GetParam());
  ASSERT_EQ(ds.node_features.size(), ds.graphs.size());
  ASSERT_EQ(ds.edge_features.size(), ds.graphs.size());
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    EXPECT_EQ(ds.node_features[i].size(),
              std::size_t{ds.graphs[i].num_nodes()} *
                  ds.spec.vertex_features);
    EXPECT_EQ(ds.edge_features[i].size(),
              std::size_t{ds.graphs[i].num_edges()} * ds.spec.edge_features);
  }
}

TEST_P(DatasetTableV, UndirectedVersionsPresent) {
  const Dataset ds = make_dataset(GetParam());
  ASSERT_EQ(ds.undirected.size(), ds.graphs.size());
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    // Symmetrization at least preserves and at most doubles the edges.
    EXPECT_GE(ds.undirected[i].num_edges(), ds.graphs[i].num_edges());
    EXPECT_LE(ds.undirected[i].num_edges(), 2U * ds.graphs[i].num_edges());
    EXPECT_EQ(ds.undirected[i].num_nodes(), ds.graphs[i].num_nodes());
  }
}

TEST_P(DatasetTableV, Deterministic) {
  const Dataset a = make_dataset(GetParam(), 123);
  const Dataset b = make_dataset(GetParam(), 123);
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (std::size_t i = 0; i < a.graphs.size(); ++i) {
    ASSERT_EQ(a.graphs[i].num_edges(), b.graphs[i].num_edges());
  }
  EXPECT_EQ(a.node_features.front(), b.node_features.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetTableV, ::testing::ValuesIn(kAllDatasets),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      return dataset_spec(info.param).name;
    });

TEST(Dataset, TableVValuesVerbatim) {
  // Pin the exact Table V rows.
  const DatasetSpec& cora = dataset_spec(DatasetId::kCora);
  EXPECT_EQ(cora.total_nodes, 2708U);
  EXPECT_EQ(cora.total_edges, 5429U);
  EXPECT_EQ(cora.vertex_features, 1433U);
  EXPECT_EQ(cora.output_features, 7U);

  const DatasetSpec& cite = dataset_spec(DatasetId::kCiteseer);
  EXPECT_EQ(cite.total_nodes, 3327U);
  EXPECT_EQ(cite.total_edges, 4732U);
  EXPECT_EQ(cite.vertex_features, 3703U);

  const DatasetSpec& pub = dataset_spec(DatasetId::kPubmed);
  EXPECT_EQ(pub.total_nodes, 19717U);
  EXPECT_EQ(pub.total_edges, 44338U);
  EXPECT_EQ(pub.vertex_features, 500U);
  EXPECT_EQ(pub.output_features, 3U);

  const DatasetSpec& qm9 = dataset_spec(DatasetId::kQm9_1000);
  EXPECT_EQ(qm9.num_graphs, 1000U);
  EXPECT_EQ(qm9.total_nodes, 12314U);
  EXPECT_EQ(qm9.total_edges, 12080U);
  EXPECT_EQ(qm9.vertex_features, 13U);
  EXPECT_EQ(qm9.edge_features, 5U);
  EXPECT_EQ(qm9.output_features, 73U);

  const DatasetSpec& dblp = dataset_spec(DatasetId::kDblp1);
  EXPECT_EQ(dblp.total_nodes, 547U);
  EXPECT_EQ(dblp.total_edges, 2654U);
  EXPECT_EQ(dblp.vertex_features, 1U);
}

TEST(Dataset, PubmedSparsityMatchesPaper) {
  // "for the sparsest input (Pubmed, at 99.989% sparse)".
  const DatasetSpec& pub = dataset_spec(DatasetId::kPubmed);
  const double density = static_cast<double>(pub.total_edges) /
                         (static_cast<double>(pub.total_nodes) *
                          pub.total_nodes);
  EXPECT_NEAR(1.0 - density, 0.99989, 0.00001);
}

TEST(Dataset, DblpFeatureIsVertexDegree) {
  // "the reference implementation uses the vertex degree as a
  //  single-element vertex state, a technique we duplicate".
  const Dataset ds = make_dataset(DatasetId::kDblp1);
  const auto& g = ds.undirected[0];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FLOAT_EQ(ds.node_features[0][v],
                    static_cast<float>(g.out_degree(v)));
  }
}

TEST(Dataset, Qm9GraphsAreSmall) {
  const Dataset ds = make_dataset(DatasetId::kQm9_1000);
  for (const auto& g : ds.graphs) {
    EXPECT_GE(g.num_nodes(), 12U);
    EXPECT_LE(g.num_nodes(), 13U);
  }
}

TEST(Dataset, LookupByName) {
  EXPECT_EQ(dataset_by_name("Cora"), DatasetId::kCora);
  EXPECT_EQ(dataset_by_name("QM9_1000"), DatasetId::kQm9_1000);
  EXPECT_THROW((void)dataset_by_name("nope"), std::invalid_argument);
}

TEST(Dataset, DifferentSeedsDifferentFeatures) {
  const Dataset a = make_dataset(DatasetId::kCora, 1);
  const Dataset b = make_dataset(DatasetId::kCora, 2);
  EXPECT_NE(a.node_features.front(), b.node_features.front());
  // But identical aggregate statistics.
  EXPECT_EQ(a.total_edges(), b.total_edges());
}

}  // namespace
}  // namespace gnna::graph
