#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "common/rng.hpp"
#include "graph/generator.hpp"

namespace gnna::graph {
namespace {

Graph test_graph() {
  Rng rng(21);
  return generate_citation_graph(rng, 200, 800);
}

using Param = std::tuple<PartitionPolicy, TileId>;

class PartitionAll : public ::testing::TestWithParam<Param> {};

TEST_P(PartitionAll, EveryVertexAssignedInRange) {
  const auto [policy, tiles] = GetParam();
  const Graph g = test_graph();
  const Partition p = make_partition(g, tiles, policy);
  EXPECT_EQ(p.num_nodes(), g.num_nodes());
  EXPECT_EQ(p.num_tiles(), tiles);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_LT(p.owner(v), tiles);
}

TEST_P(PartitionAll, ByTileCoversExactlyOnce) {
  const auto [policy, tiles] = GetParam();
  const Graph g = test_graph();
  const Partition p = make_partition(g, tiles, policy);
  const auto buckets = p.by_tile();
  ASSERT_EQ(buckets.size(), tiles);
  NodeId total = 0;
  for (const auto& b : buckets) total += static_cast<NodeId>(b.size());
  EXPECT_EQ(total, g.num_nodes());
}

TEST_P(PartitionAll, RoughlyBalancedVertexCounts) {
  const auto [policy, tiles] = GetParam();
  const Graph g = test_graph();
  const auto buckets = make_partition(g, tiles, policy).by_tile();
  const std::size_t per = (g.num_nodes() + tiles - 1) / tiles;
  if (policy == PartitionPolicy::kRoundRobin ||
      policy == PartitionPolicy::kBlock) {
    // Block partitions round the chunk size up, so the last tile may run
    // short; both policies are bounded above by the chunk size.
    for (const auto& b : buckets) EXPECT_LE(b.size(), per);
  }
  if (policy == PartitionPolicy::kRoundRobin) {
    for (const auto& b : buckets) EXPECT_GE(b.size() + 1, per);
  }
  if (policy == PartitionPolicy::kDegreeGreedy) {
    // Greedy balances degree load, not counts; just require non-degenerate
    // spread when there is enough work to go around.
    std::size_t nonempty = 0;
    for (const auto& b : buckets) nonempty += !b.empty();
    EXPECT_EQ(nonempty, buckets.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndTiles, PartitionAll,
    ::testing::Combine(::testing::Values(PartitionPolicy::kRoundRobin,
                                         PartitionPolicy::kBlock,
                                         PartitionPolicy::kDegreeGreedy),
                       ::testing::Values<TileId>(1, 2, 8, 16)));

TEST(Partition, RoundRobinPattern) {
  const Graph g = test_graph();
  const Partition p = make_partition(g, 4, PartitionPolicy::kRoundRobin);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(p.owner(v), v % 4);
  }
}

TEST(Partition, BlockIsContiguous) {
  const Graph g = test_graph();
  const Partition p = make_partition(g, 4, PartitionPolicy::kBlock);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_GE(p.owner(v), p.owner(v - 1));
  }
}

TEST(Partition, DegreeGreedyBalancesLoad) {
  const Graph g = test_graph();
  const Partition p = make_partition(g, 4, PartitionPolicy::kDegreeGreedy);
  std::vector<std::uint64_t> load(4, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    load[p.owner(v)] += g.out_degree(v) + 1;
  }
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  // Greedy packing keeps the spread tight relative to the heaviest vertex.
  EXPECT_LE(*mx - *mn, static_cast<std::uint64_t>(g.max_out_degree()) + 1);
}

TEST(Partition, ZeroTilesThrows) {
  const Graph g = test_graph();
  EXPECT_THROW(make_partition(g, 0, PartitionPolicy::kRoundRobin),
               std::invalid_argument);
}

TEST(Partition, ByTileIsAscendingWithinEachBucket) {
  const Graph g = test_graph();
  for (const PartitionPolicy policy :
       {PartitionPolicy::kRoundRobin, PartitionPolicy::kBlock,
        PartitionPolicy::kDegreeGreedy, PartitionPolicy::kProfileGuided}) {
    const auto buckets = make_partition(g, 4, policy).by_tile();
    for (const auto& b : buckets) {
      EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
      EXPECT_EQ(std::adjacent_find(b.begin(), b.end()), b.end());
    }
  }
}

TEST(Partition, ProfileGuidedWithoutLoadsFallsBackToRoundRobin) {
  // make_partition has no profile to consume; the policy must degrade to
  // the round-robin baseline the profiling pass itself uses.
  const Graph g = test_graph();
  const Partition p = make_partition(g, 4, PartitionPolicy::kProfileGuided);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(p.owner(v), v % 4);
  }
}

TEST(ProfilePartition, LptBalancesMeasuredLoads) {
  // Loads 8,7,..,1 over 2 tiles: LPT packs {8,5,4,1} vs {7,6,3,2} = 18/18.
  const std::vector<double> loads = {8, 7, 6, 5, 4, 3, 2, 1};
  const Partition p = make_profile_partition(8, 2, loads);
  std::vector<double> tile_load(2, 0.0);
  for (NodeId v = 0; v < 8; ++v) tile_load[p.owner(v)] += loads[v];
  EXPECT_DOUBLE_EQ(tile_load[0], 18.0);
  EXPECT_DOUBLE_EQ(tile_load[1], 18.0);
  // Heaviest vertex (id 0, load 8) seeds the lowest tile id.
  EXPECT_EQ(p.owner(0), 0);
}

TEST(ProfilePartition, UnprofiledVerticesRoundRobin) {
  // Only vertices 0..3 carry loads; 4..11 are missing from the profile
  // (loads vector shorter than n) and must spread round-robin.
  const std::vector<double> loads = {4, 3, 2, 1};
  const Partition p = make_profile_partition(12, 4, loads);
  std::vector<std::size_t> count(4, 0);
  for (NodeId v = 4; v < 12; ++v) ++count[p.owner(v)];
  for (const std::size_t c : count) EXPECT_EQ(c, 2U);
}

TEST(ProfilePartition, ZeroLoadEntriesCountAsUnprofiled) {
  // Zero entries (evicted from the bounded top-K table) take the fallback
  // path too, not a tile-0 pile-up.
  const std::vector<double> loads = {0, 0, 0, 0, 0, 0, 0, 0};
  const Partition p = make_profile_partition(8, 4, loads);
  std::vector<std::size_t> count(4, 0);
  for (NodeId v = 0; v < 8; ++v) ++count[p.owner(v)];
  for (const std::size_t c : count) EXPECT_EQ(c, 2U);
}

TEST(ProfilePartition, EmptyLoadsIsPureRoundRobin) {
  const Partition p = make_profile_partition(10, 3, {});
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(p.owner(v), v % 3);
  }
}

TEST(ProfilePartition, ZeroTilesThrows) {
  EXPECT_THROW(make_profile_partition(4, 0, {1, 2, 3, 4}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gnna::graph
