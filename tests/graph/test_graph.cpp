#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gnna::graph {
namespace {

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  return std::move(b).build();
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Graph, BasicCounts) {
  const Graph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4U);
  EXPECT_EQ(g.num_edges(), 4U);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = diamond();
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2U);
  EXPECT_EQ(n0[0], 1U);
  EXPECT_EQ(n0[1], 2U);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Graph, OutDegree) {
  const Graph g = diamond();
  EXPECT_EQ(g.out_degree(0), 2U);
  EXPECT_EQ(g.out_degree(1), 1U);
  EXPECT_EQ(g.out_degree(3), 0U);
  EXPECT_EQ(g.max_out_degree(), 2U);
  EXPECT_DOUBLE_EQ(g.mean_out_degree(), 1.0);
}

TEST(Graph, HasEdge) {
  const Graph g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 0));  // directed
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, EdgeIndexMatchesCsr) {
  const Graph g = diamond();
  EXPECT_EQ(g.edge_index(0, 0), 0U);
  EXPECT_EQ(g.edge_index(0, 1), 1U);
  EXPECT_EQ(g.edge_index(1, 0), 2U);
}

TEST(GraphBuilder, DedupeCollapsesDuplicates) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = std::move(b).build(/*dedupe=*/true);
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(GraphBuilder, NoDedupeKeepsDuplicates) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build(/*dedupe=*/false);
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(3, 0), std::out_of_range);
}

TEST(GraphBuilder, UndirectedEdgeAddsBoth) {
  GraphBuilder b(2);
  b.add_undirected_edge(0, 1);
  const Graph g = std::move(b).build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(Graph, SymmetrizedAddsReverseEdges) {
  const Graph g = diamond().symmetrized();
  EXPECT_EQ(g.num_edges(), 8U);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
}

TEST(Graph, SymmetrizedIdempotent) {
  const Graph s1 = diamond().symmetrized();
  const Graph s2 = s1.symmetrized();
  EXPECT_EQ(s1.num_edges(), s2.num_edges());
}

TEST(Graph, SymmetrizedDropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build().symmetrized();
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.num_edges(), 2U);
}

TEST(Graph, WithSelfLoops) {
  const Graph g = diamond().with_self_loops();
  EXPECT_EQ(g.num_edges(), 8U);  // 4 original + 4 loops
  for (NodeId v = 0; v < 4; ++v) EXPECT_TRUE(g.has_edge(v, v));
}

TEST(Graph, WithSelfLoopsDoesNotDuplicateExisting) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build().with_self_loops();
  EXPECT_EQ(g.num_edges(), 3U);  // (0,0), (0,1), (1,1)
}

TEST(Graph, Sparsity) {
  const Graph g = diamond();
  EXPECT_DOUBLE_EQ(g.sparsity(), 1.0 - 4.0 / 16.0);
}

TEST(Graph, RowPtrConsistency) {
  const Graph g = diamond();
  const auto rp = g.row_ptr();
  ASSERT_EQ(rp.size(), 5U);
  EXPECT_EQ(rp.front(), 0U);
  EXPECT_EQ(rp.back(), g.num_edges());
  for (std::size_t i = 1; i < rp.size(); ++i) EXPECT_LE(rp[i - 1], rp[i]);
}

}  // namespace
}  // namespace gnna::graph
