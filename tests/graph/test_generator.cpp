#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>

#include "common/rng.hpp"

namespace gnna::graph {
namespace {

/// No self loops and no duplicate directed edges.
void expect_simple(const Graph& g) {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId u : g.neighbors(v)) {
      EXPECT_NE(u, v) << "self loop at " << v;
      EXPECT_TRUE(seen.emplace(v, u).second) << "dup edge " << v << "->" << u;
    }
  }
}

using GenParams = std::tuple<NodeId, EdgeId>;

class CitationGen : public ::testing::TestWithParam<GenParams> {};

TEST_P(CitationGen, ExactCountsAndSimple) {
  const auto [n, e] = GetParam();
  Rng rng(n * 31 + e);
  const Graph g = generate_citation_graph(rng, n, e);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), e);
  expect_simple(g);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CitationGen,
                         ::testing::Values(GenParams{10, 0},
                                           GenParams{10, 20},
                                           GenParams{100, 300},
                                           GenParams{2708, 5429},
                                           GenParams{50, 50 * 49}));

class RandomGen : public ::testing::TestWithParam<GenParams> {};

TEST_P(RandomGen, ExactCountsAndSimple) {
  const auto [n, e] = GetParam();
  Rng rng(n * 17 + e);
  const Graph g = generate_random_graph(rng, n, e);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_EQ(g.num_edges(), e);
  expect_simple(g);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomGen,
                         ::testing::Values(GenParams{5, 0}, GenParams{5, 20},
                                           GenParams{64, 512},
                                           GenParams{547, 2654}));

TEST(CitationGen, Deterministic) {
  Rng a(5);
  Rng b(5);
  const Graph ga = generate_citation_graph(a, 200, 600);
  const Graph gb = generate_citation_graph(b, 200, 600);
  for (NodeId v = 0; v < 200; ++v) {
    ASSERT_EQ(ga.out_degree(v), gb.out_degree(v));
  }
}

TEST(CitationGen, InDegreeIsSkewed) {
  Rng rng(77);
  const Graph g = generate_citation_graph(rng, 1000, 5000, /*alpha=*/1.0);
  std::vector<std::uint32_t> in_deg(1000, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId u : g.neighbors(v)) ++in_deg[u];
  }
  const auto max_in = *std::max_element(in_deg.begin(), in_deg.end());
  // Zipf hubs: the biggest in-degree should far exceed the mean (5).
  EXPECT_GT(max_in, 25U);
}

TEST(CitationGen, ThrowsWhenOverCapacity) {
  Rng rng(1);
  EXPECT_THROW(generate_citation_graph(rng, 3, 7), std::invalid_argument);
}

TEST(MoleculeGen, ExactUndirectedBondCount) {
  Rng rng(3);
  const Graph g = generate_molecule_graph(rng, 12, 13);
  EXPECT_EQ(g.num_nodes(), 12U);
  EXPECT_EQ(g.num_edges(), 13U);
  expect_simple(g);
}

TEST(MoleculeGen, BondsStoredLowToHigh) {
  Rng rng(4);
  const Graph g = generate_molecule_graph(rng, 15, 16);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId u : g.neighbors(v)) EXPECT_GT(u, v);
  }
}

TEST(MoleculeGen, TreeBackboneConnectsBudgetedPrefix) {
  // With e >= n-1 the first n vertices form one connected component
  // (tree + rings) in the symmetrized view.
  Rng rng(5);
  const Graph g = generate_molecule_graph(rng, 10, 12).symmetrized();
  std::vector<bool> seen(10, false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const NodeId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  for (NodeId v = 0; v < 10; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(MoleculeGen, FewerEdgesThanTreeAllowed) {
  Rng rng(6);
  const Graph g = generate_molecule_graph(rng, 14, 11);
  EXPECT_EQ(g.num_edges(), 11U);
}

TEST(MoleculeGen, ThrowsWhenOverCapacity) {
  Rng rng(7);
  EXPECT_THROW(generate_molecule_graph(rng, 4, 7), std::invalid_argument);
}

TEST(CommunityGen, ExactCountsAndSimple) {
  Rng rng(8);
  const Graph g = generate_community_graph(rng, 547, 2654, 3);
  EXPECT_EQ(g.num_nodes(), 547U);
  EXPECT_EQ(g.num_edges(), 2654U);
  expect_simple(g);
}

TEST(CommunityGen, IntraCommunityBias) {
  Rng rng(9);
  const std::uint32_t n = 300;
  const Graph g = generate_community_graph(rng, n, 3000, 3, 0.8);
  const NodeId comm_size = (n + 2) / 3;
  std::uint64_t intra = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const NodeId u : g.neighbors(v)) {
      intra += (v / comm_size == u / comm_size);
    }
  }
  // 80% targeted intra, minus collisions; uniform would give ~33%.
  EXPECT_GT(static_cast<double>(intra) / g.num_edges(), 0.55);
}

TEST(CommunityGen, SingleCommunityDegeneratesToUniform) {
  Rng rng(10);
  const Graph g = generate_community_graph(rng, 50, 200, 1);
  EXPECT_EQ(g.num_edges(), 200U);
}

TEST(CommunityGen, ZeroCommunitiesThrows) {
  Rng rng(11);
  EXPECT_THROW(generate_community_graph(rng, 10, 5, 0),
               std::invalid_argument);
}

TEST(CommunityGen, SaturatedBlocksStillReachExactCount) {
  // Dense request relative to community capacity exercises the uniform
  // fallback path.
  Rng rng(12);
  const Graph g = generate_community_graph(rng, 30, 600, 3, 0.99);
  EXPECT_EQ(g.num_edges(), 600U);
  expect_simple(g);
}

}  // namespace
}  // namespace gnna::graph
